"""Multi-tenant fair-share job queue over the session machinery.

Tenants declare themselves (name + weight) when the queue is built; the
queue splits any service-level :class:`~repro.pipeline.budget.Budget`
across them with the existing :class:`~repro.pipeline.budget.
BudgetAllocator` policies — the same code that splits a job across shards
splits the service across tenants — and keeps a per-tenant
allocated-vs-spent ledger, so fairness is checkable after the fact rather
than assumed.

Draining runs each submission through three explicit scheduler phases:

- **admit** — content-address the job (:func:`~repro.service.cache.
  job_cache_key`) and serve a cache hit without touching the pipeline;
- **allot** — draw the job's budget slice from its tenant's remaining
  share; the *match quota* is rationed here too (an adaptive
  ``remaining / pending`` slice of the tenant's e-match allowance), so one
  churn-heavy submission cannot starve the tenant's later jobs of matches;
- **dispatch** — hand the allotted round to the existing
  :class:`~repro.pipeline.session.Session` machinery (its process pool
  fans a round out when ``parallel=True``), then settle the ledger from
  each record's governor block and stamp service provenance
  (``tenant``/``queue_wait_s``) onto the record.

Rounds are round-robin across tenants (one job per tenant per round), so a
tenant with a deep backlog cannot head-of-line-block the others.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.pipeline.budget import (
    Budget,
    Clock,
    allocator_for,
    spend_dict,
)
from repro.pipeline.session import Job, RunRecord, Session
from repro.service.cache import ResultCache, job_cache_key, warm_family
from repro.service.events import Event, EventFeed, events_from_record

__all__ = ["TenantShare", "Submission", "OptimizationQueue"]


@dataclass(frozen=True)
class TenantShare:
    """A tenant's declared slice of the service: a name and a weight."""

    name: str
    weight: float = 1.0


@dataclass
class Submission:
    """One queued job: who asked, what for, and what came of it."""

    ticket: int
    tenant: str
    job: Job
    submitted_at: float
    cache_key: str = ""
    status: str = "queued"  # "queued" | "done" | "error"
    record: RunRecord | None = None
    dispatched_at: float | None = None


@dataclass
class _TenantAccount:
    """Per-tenant fair-share ledger: a ceiling and the spend against it."""

    share: TenantShare
    ceiling: Budget | None
    spent: dict = field(default_factory=spend_dict)
    jobs: int = 0
    cache_hits: int = 0

    def _left(self, quota: str) -> int | None:
        total = getattr(self.ceiling, quota) if self.ceiling else None
        if total is None:
            return None
        return max(0, int(total) - self.spent[quota])

    def draw(self, pending: int) -> Budget | None:
        """An adaptive ``remaining / pending`` slice of this tenant's share."""
        if self.ceiling is None:
            return None
        fraction = 1.0 / max(pending, 1)

        def slice_of(left):
            if left is None:
                return None
            return min(math.ceil(left * fraction), left)

        time_total = self.ceiling.time_s
        time_left = (
            None
            if time_total is None
            else max(0.0, time_total - self.spent["time_s"])
        )
        return Budget(
            time_s=None if time_left is None else time_left * fraction,
            deadline=self.ceiling.deadline,
            nodes=slice_of(self._left("nodes")),
            iters=slice_of(self._left("iters")),
            bdd_nodes=slice_of(self._left("bdd_nodes")),
            # matches are rationed by the explicit match-quota phase.
        )

    def match_quota(self, pending: int) -> int | None:
        """The match-quota phase: this job's slice of remaining e-matches."""
        left = self._left("matches")
        if left is None:
            return None
        return min(math.ceil(left / max(pending, 1)), left)

    def settle(self, record: RunRecord) -> None:
        spent = record.budget.get("spent", {}) if record.budget else {}
        self.spent["time_s"] = round(
            self.spent["time_s"] + spent.get("time_s", record.runtime_s), 6
        )
        for quota in ("nodes", "iters", "matches", "bdd_nodes"):
            self.spent[quota] += spent.get(quota, 0)
        self.jobs += 1

    def as_dict(self) -> dict:
        return {
            "weight": self.share.weight,
            "allocated": self.ceiling.as_dict() if self.ceiling else {},
            "spent": dict(self.spent),
            "jobs": self.jobs,
            "cache_hits": self.cache_hits,
        }


class OptimizationQueue:
    """Fair-share submission queue draining onto :class:`Session` runs.

    >>> queue = OptimizationQueue(
    ...     [TenantShare("team-a"), TenantShare("team-b", weight=2.0)],
    ...     budget=Budget(iters=90),
    ... )                                                # doctest: +SKIP

    ``budget_policy`` picks both how the service budget splits across
    tenants and the default per-run governor policy (``verify-aware`` by
    default: a daemon's submissions ask for verification, and a
    saturate-heavy neighbour must not push their checks into timeout).
    """

    def __init__(
        self,
        tenants: Sequence[TenantShare],
        budget: Budget | None = None,
        budget_policy: str = "verify-aware",
        cache: ResultCache | None = None,
        feed: EventFeed | None = None,
        parallel: bool = False,
        max_workers: int | None = None,
        clock: Clock | None = None,
    ) -> None:
        if not tenants:
            raise ValueError("a service queue needs at least one tenant")
        names = [share.name for share in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        self.budget = budget
        self.budget_policy = budget_policy
        self.cache = cache if cache is not None else ResultCache()
        self.feed = feed if feed is not None else EventFeed()
        self.parallel = parallel
        self.max_workers = max_workers
        self.clock: Clock = clock if clock is not None else time.monotonic
        allocator = allocator_for(budget_policy)
        if budget is None:
            ceilings: list[Budget | None] = [None] * len(tenants)
        else:
            ceilings = allocator.split(
                budget, [share.weight for share in tenants]
            )
        self.accounts = {
            share.name: _TenantAccount(share, ceiling)
            for share, ceiling in zip(tenants, ceilings, strict=True)
        }
        self.submissions: list[Submission] = []
        # submit() is called from the daemon's accept thread while the
        # worker thread drains; ticket assignment needs the lock (the rest
        # of the queue is only ever touched by the draining thread).
        self._submit_lock = threading.Lock()

    # ------------------------------------------------------------- submitting
    def submit(self, job: Job, tenant: str) -> Submission:
        """Enqueue a job for a tenant; returns its ticket immediately."""
        if tenant not in self.accounts:
            raise KeyError(
                f"unknown tenant {tenant!r}; have {sorted(self.accounts)}"
            )
        cache_key = job_cache_key(job)
        with self._submit_lock:
            submission = Submission(
                ticket=len(self.submissions),
                tenant=tenant,
                job=job,
                submitted_at=self.clock(),
                cache_key=cache_key,
            )
            self.submissions.append(submission)
        self.feed.emit(
            Event(job=job.name, tenant=tenant, kind="queued")
        )
        return submission

    def pending(self, tenant: str | None = None) -> list[Submission]:
        return [
            sub
            for sub in list(self.submissions)
            if sub.status == "queued"
            and (tenant is None or sub.tenant == tenant)
        ]

    # --------------------------------------------------------------- draining
    def drain(self) -> list[RunRecord]:
        """Run every queued submission to a record (in completion order)."""
        records: list[RunRecord] = []
        while self.pending():
            records.extend(self._run_round())
        return records

    def _run_round(self) -> list[RunRecord]:
        """One fair round: at most one queued job per tenant."""
        round_subs: list[Submission] = []
        for tenant in self.accounts:
            backlog = self.pending(tenant)
            if backlog:
                round_subs.append(backlog[0])
        executed: list[tuple[Submission, Job]] = []
        records: list[RunRecord] = []
        for sub in round_subs:
            cached = self._admit(sub)
            if cached is not None:
                records.append(cached)
            else:
                executed.append((sub, self._allot(sub)))
        records.extend(self._dispatch(executed))
        return records

    # ---------------------------------------------------------------- phases
    def _admit(self, sub: Submission) -> RunRecord | None:
        """Serve from the content-addressed cache; None means run it."""
        hit = self.cache.get(sub.cache_key)
        if hit is None:
            return None
        record = replace(
            hit,
            job=sub.job.name,
            tenant=sub.tenant,
            queue_wait_s=round(self.clock() - sub.submitted_at, 6),
        )
        account = self.accounts[sub.tenant]
        account.cache_hits += 1
        sub.status = "done"
        sub.record = record
        # submit() already emitted the live "queued" event; replay the rest.
        self.feed.extend(events_from_record(record)[1:])
        return record

    def _allot(self, sub: Submission) -> Job:
        """Draw the job's budget slice from its tenant's fair share."""
        account = self.accounts[sub.tenant]
        sub.dispatched_at = self.clock()
        pending = len(self.pending(sub.tenant))
        draw = account.draw(pending)
        quota = account.match_quota(pending)
        if quota is not None:
            draw = replace(draw, matches=quota)
        if draw is None:
            budget = sub.job.budget
        elif sub.job.budget is None:
            budget = draw
        else:
            budget = sub.job.budget.intersect(draw)
        job = replace(
            sub.job, budget=budget, budget_policy=self.budget_policy
        )
        return self._warm(job)

    def _warm(self, job: Job) -> Job:
        """Attach the e-graph artifact tier: a cache *miss* (edited design,
        new limits) still seeds from the design family's persisted graph
        and refreshes the artifact for the next submission."""
        if self.cache.egraph_dir is None:
            return job  # pathless cache: no artifact tier
        if job.shards > 0 or job.auto_shard_nodes is not None:
            return job  # warm-start composes with monolithic schedules only
        if job.warm_start or job.save_egraph:
            return job  # the submitter pinned explicit artifact paths
        family = warm_family(job)
        artifact = self.cache.get_egraph(family)
        return replace(
            job,
            warm_start=str(artifact) if artifact is not None else None,
            save_egraph=str(self.cache.egraph_path(family)),
        )

    def _dispatch(
        self, executed: list[tuple[Submission, Job]]
    ) -> list[RunRecord]:
        """Run one allotted round through the Session machinery."""
        if not executed:
            return []
        session = Session(
            jobs=[job for _, job in executed],
            parallel=self.parallel and len(executed) > 1,
            max_workers=self.max_workers,
        )
        records = []
        for sub, record in zip(
            [s for s, _ in executed], session.run(), strict=True
        ):
            record.tenant = sub.tenant
            record.queue_wait_s = round(sub.dispatched_at - sub.submitted_at, 6)
            account = self.accounts[sub.tenant]
            account.settle(record)
            self.cache.put(sub.cache_key, record)
            sub.status = "done" if record.status == "ok" else "error"
            sub.record = record
            self.feed.extend(events_from_record(record)[1:])
            records.append(record)
        return records

    # ------------------------------------------------------------- telemetry
    def ledger(self) -> dict:
        """Per-tenant allocated-vs-spent (the fairness audit trail)."""
        return {name: acct.as_dict() for name, acct in self.accounts.items()}
