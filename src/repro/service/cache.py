"""Content-addressed result cache for the optimization service.

Two submissions that describe the *same optimization problem* should pay
for one pipeline run.  "Same problem" is structural, not nominal: the
design's elaborated :class:`~repro.ir.expr.Expr` DAG is canonicalized so
that alpha-renaming the inputs or reordering the children of commutative
operators does not change the key, while any semantic difference (widths,
constants, operator structure, input-range constraints, schedule knobs,
budget class) does.

Canonicalization assigns variables alpha ids greedily: at each step the
unassigned variable whose tentative assignment minimizes the whole-DAG
digest gets the next id.  Digests are computed bottom-up over the shared
DAG with commutative children sorted by digest, so the comparison is
structure-only — two candidates tie exactly when they are symmetric under
the partial assignment, in which case either choice yields the same final
form.  The id assignment is a bijection, so equal keys mean the DAGs agree
up to input renaming and commutative reordering (up to SHA-256 collision).

The cache itself is two-tier: a bounded in-memory LRU in front of an
optional on-disk JSON file the daemon persists on shutdown and reloads on
start.  Only ``status == "ok"`` records are admitted — errors always rerun.
Disk writes are atomic (tempfile + ``os.replace``) and a corrupt/unreadable
disk tier degrades to an empty cache instead of killing daemon startup.

Beside the record tier sits the **warm-start artifact tier**: persisted
e-graphs (see :mod:`repro.egraph.serialize`) in a ``<cache>.egraphs/``
directory, keyed by *family* — the design label + ruleset knobs — rather
than by exact content digest.  An *edited* design misses the record cache
(its canonical digest changed) but still finds its family's saturated
e-graph and warm-starts from it instead of saturating cold.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from collections import OrderedDict
from dataclasses import replace
from pathlib import Path
from typing import Mapping

from repro.designs.registry import design_roots, get_design
from repro.egraph.serialize import EGraphFormatError, read_header
from repro.intervals import IntervalSet
from repro.ir import ops
from repro.ir.expr import Expr, subterms
from repro.pipeline.budget import Budget
from repro.pipeline.session import (
    Job,
    RunRecord,
    job_schedule_key,
    resolve_design,
)

__all__ = [
    "canonical_digest",
    "budget_class",
    "job_cache_key",
    "job_digest",
    "schedule_key",
    "warm_family",
    "ResultCache",
]

logger = logging.getLogger(__name__)


def _digest(*parts: object) -> str:
    """SHA-256 over a deterministic rendering of the parts."""
    payload = repr(parts).encode()
    return hashlib.sha256(payload).hexdigest()


def _dag_digests(
    roots: tuple[Expr, ...],
    var_ids: Mapping[Expr, int],
    var_ranges: Mapping[str, tuple],
) -> list[str]:
    """Bottom-up digest per root under a (possibly partial) var assignment.

    VAR nodes drop their name: assigned variables render as their alpha id,
    unassigned ones as an anonymous ``?``.  Width and any input-range
    constraint stay part of the leaf (so the greedy assignment sees them —
    a constrained input is never symmetric with an unconstrained one).
    Children of commutative operators contribute as a sorted multiset of
    digests.
    """
    memo: dict[Expr, str] = {}

    def rec(node: Expr) -> str:
        found = memo.get(node)
        if found is not None:
            return found
        if node.op is ops.VAR:
            ident = var_ids.get(node)
            tag = ("?",) if ident is None else ("v", ident)
            result = _digest(
                "var",
                node.var_width,
                var_ranges.get(node.var_name, ()),
                tag,
            )
        else:
            kids = [rec(child) for child in node.children]
            if node.op in ops.COMMUTATIVE:
                kids.sort()
            result = _digest(node.op.name, node.attrs, tuple(kids))
        memo[node] = result
        return result

    return [rec(root) for root in roots]


def canonical_digest(
    roots: Expr | Mapping[str, Expr],
    input_ranges: Mapping[str, IntervalSet] | None = None,
) -> str:
    """Alpha- and commutativity-invariant digest of an ``Expr`` DAG.

    ``roots`` is one expression or a mapping of output name → expression;
    output names are interface labels, not structure, so multi-output
    designs hash the sorted multiset of per-root canonical forms.
    ``input_ranges`` constraints (keyed by source variable name) travel
    with their variable's leaf — a constraint on ``x`` follows ``x``
    through the renaming, so constraining ``x`` or ``y`` of a symmetric
    ``x + y`` yields the same key.
    """
    root_tuple = (
        (roots,) if isinstance(roots, Expr) else tuple(roots[k] for k in sorted(roots))
    )
    variables = sorted(
        (node for node in subterms(root_tuple) if node.is_var),
        key=lambda node: (node.var_width, node.var_name),
    )
    var_ranges = {
        name: tuple((part.lo, part.hi) for part in iset.parts)
        for name, iset in (input_ranges or {}).items()
    }

    def combined(assignment: Mapping[Expr, int]) -> str:
        return _digest(
            tuple(sorted(_dag_digests(root_tuple, assignment, var_ranges)))
        )

    var_ids: dict[Expr, int] = {}
    for next_id in range(len(variables)):
        best_node = best_key = None
        for node in variables:
            if node in var_ids:
                continue
            candidate = combined({**var_ids, node: next_id})
            # Ties mean the candidates are symmetric under the current
            # partial assignment; the name-ordered scan picks the first.
            if best_key is None or candidate < best_key:
                best_node, best_key = node, candidate
        var_ids[best_node] = next_id
    return combined(var_ids)


def budget_class(budget: Budget | None) -> str:
    """Coarse resource class a submission ran under.

    Quota fields define the class; the absolute ``deadline`` is an artifact
    of *when* a run happened and is excluded — two runs given the same
    ``time_s`` wall are the same class regardless of start time.
    """
    if budget is None:
        return "unbudgeted"
    return _digest(
        budget.time_s,
        budget.nodes,
        budget.iters,
        budget.matches,
        budget.bdd_nodes,
    )


#: Job fields that select *what gets computed* (anything that can change
#: the record's payload).  ``name`` is a label and ``design`` is replaced
#: by the structural digest; ``budget`` is classed separately.
_SCHEDULE_FIELDS = (
    "iter_limit",
    "node_limit",
    "time_limit",
    "split_threshold",
    "enable_assume",
    "enable_condition",
    "verify",
    "phases",
    "phase_iters",
    "shards",
    "auto_shard_nodes",
    "budget_policy",
    "stitch",
    # The extraction objective and Pareto mode change what the run *returns*
    # (the extracted design / the pareto artifact), so a greedy record must
    # never satisfy an ilp request — the solver subsystem's cache-correctness
    # contract.
    "extract_objective",
    "pareto",
)

def job_digest(job: Job) -> str:
    """Canonical structural digest of the job's design (source-aware)."""
    if job.source is not None:
        roots, input_ranges = resolve_design(job)
        return canonical_digest(roots, input_ranges)
    design = get_design(job.design)
    return canonical_digest(design_roots(job.design), design.input_ranges)


#: Digest of the ruleset-selecting knobs — the same key the pipeline's
#: ``WarmStart``/``SaveEGraph`` stages stamp into artifact headers, so the
#: service and a direct CLI run agree on artifact compatibility.
schedule_key = job_schedule_key


def warm_family(job: Job) -> str:
    """Warm-start family: design *label* + ruleset knobs.

    Deliberately label-keyed, not content-keyed — an edited revision of a
    design keeps its label, so it maps to the same family and finds the
    previous revision's saturated e-graph.
    """
    return _digest("egraph-family", job.design, schedule_key(job))


def job_cache_key(job: Job) -> str:
    """Content address of a job: design structure + schedule + budget class.

    The design contributes through :func:`canonical_digest` of its
    elaborated roots (memoized in the registry for registry designs, or
    elaborated from ``job.source`` for ad-hoc submissions), so registry
    aliases of the same structure — or a renamed copy of an existing
    design — share cache entries.
    """
    structure = job_digest(job)
    schedule = tuple(getattr(job, name) for name in _SCHEDULE_FIELDS)
    classes = (budget_class(job.budget), budget_class(job.verify_budget))
    return _digest(structure, schedule, classes)


class ResultCache:
    """Two-tier content-addressed store of ``status == "ok"`` records.

    The memory tier is a bounded LRU; the optional disk tier is one JSON
    file (key → record dict) written by :meth:`persist` and read by
    :meth:`load`.  ``get`` promotes disk hits into memory and returns a
    *copy* of the stored record with ``cache_hit=True`` — the stored entry
    itself stays exactly as the original run produced it.
    """

    def __init__(self, capacity: int = 128, path: str | Path | None = None):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.path = Path(path) if path is not None else None
        self._memory: OrderedDict[str, RunRecord] = OrderedDict()
        self._disk: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        keys = set(self._memory)
        keys.update(self._disk)
        return len(keys)

    # ---------------------------------------------------------------- tiers
    def get(self, key: str) -> RunRecord | None:
        record = self._memory.get(key)
        if record is None and key in self._disk:
            record = RunRecord.from_dict(self._disk[key])
            self._remember(key, record)
        if record is None:
            self.misses += 1
            return None
        self._memory.move_to_end(key)
        self.hits += 1
        # Deep copy through JSON so callers can't mutate the stored entry.
        return replace(RunRecord.from_json(record.to_json()), cache_hit=True)

    def put(self, key: str, record: RunRecord) -> bool:
        """Admit a record; returns False (and stores nothing) on errors."""
        if record.status != "ok":
            return False
        self._remember(key, record)
        if self.path is not None:
            self._disk[key] = record.as_dict()
        return True

    def _remember(self, key: str, record: RunRecord) -> None:
        self._memory[key] = record
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)

    # ----------------------------------------------------------- disk tier
    def load(self) -> int:
        """Read the disk tier (if any); returns the number of entries.

        A corrupt or unreadable tier (torn write from a pre-atomic-persist
        crash, wrong permissions, non-dict payload) is logged and dropped —
        the daemon starts with an empty cache instead of dying on startup.
        """
        if self.path is None or not self.path.exists():
            return 0
        try:
            loaded = json.loads(self.path.read_text())
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            logger.warning(
                "result cache %s unreadable (%s); starting empty", self.path, exc
            )
            self._disk = {}
            return 0
        if not isinstance(loaded, dict):
            logger.warning(
                "result cache %s holds %s, expected an object; starting empty",
                self.path,
                type(loaded).__name__,
            )
            self._disk = {}
            return 0
        self._disk = loaded
        return len(self._disk)

    def persist(self) -> int:
        """Write the disk tier atomically; returns the entry count.

        Memory-tier records overwrite same-key disk entries unconditionally
        — the in-memory record is always at least as fresh.  The JSON lands
        via tempfile + ``os.replace`` so a crash mid-write leaves the
        previous file intact instead of a truncated one.
        """
        if self.path is None:
            return 0
        for key, record in self._memory.items():
            self._disk[key] = record.as_dict()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(self._disk, handle, sort_keys=True)
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return len(self._disk)

    # -------------------------------------------------- warm-start artifacts
    @property
    def egraph_dir(self) -> Path | None:
        """Directory of persisted e-graph artifacts (None when pathless)."""
        if self.path is None:
            return None
        return self.path.parent / (self.path.name + ".egraphs")

    def egraph_path(self, family: str) -> Path | None:
        """Where the artifact for ``family`` lives (whether or not it exists).

        Artifacts are written by the pipeline's ``SaveEGraph`` stage during
        the run itself (atomically, file-based — so the tier works across
        process pools); the cache only hands out paths and validates them.
        """
        directory = self.egraph_dir
        if directory is None:
            return None
        return directory / f"{family}.egraph"

    def get_egraph(self, family: str) -> Path | None:
        """Path to a *valid* artifact for ``family``, else None.

        Validity means the file exists and its header parses at the current
        format version — cheap (one line of JSON), no unpickling.
        """
        path = self.egraph_path(family)
        if path is None or not path.exists():
            return None
        try:
            read_header(path)
        except EGraphFormatError as exc:
            logger.warning("ignoring e-graph artifact %s: %s", path, exc)
            return None
        return path

    # ------------------------------------------------------------ telemetry
    def stats(self) -> dict:
        directory = self.egraph_dir
        artifacts = (
            len(list(directory.glob("*.egraph")))
            if directory is not None and directory.is_dir()
            else 0
        )
        return {
            "entries": len(self),
            "memory_entries": len(self._memory),
            "disk_entries": len(self._disk),
            "egraph_artifacts": artifacts,
            "hits": self.hits,
            "misses": self.misses,
        }
