"""Service smoke: daemon up, same design twice, second must be a cache hit.

Drives the real CLI daemon (``python -m repro serve``) over its AF_UNIX
socket, exactly as CI's ``service-smoke`` job does:

1. serve with a small budget and an on-disk cache file;
2. submit the same registry design twice (different job names / tenants —
   the cache is content-addressed, names don't matter);
3. assert the second submission came from the cache and its
   submit-to-record wall is at least 10x faster than the first;
4. resubmit an *edited* revision of the same design (a new output over an
   existing internal wire) — the record cache must miss, but the e-graph
   artifact tier must warm-start it from the first run's saturated graph;
5. graceful shutdown, then check the cache file was persisted.

Run: ``PYTHONPATH=src python examples/service_smoke.py``
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.pipeline import Job
from repro.service import job_to_dict, request, wait_for_result

SPEEDUP_FLOOR = 10.0


def submit_and_time(sock: Path, tenant: str, job: Job) -> tuple[float, object]:
    started = time.monotonic()
    reply = request(
        sock, {"op": "submit", "tenant": tenant, "job": job_to_dict(job)}
    )
    assert reply["ok"], reply
    record = wait_for_result(sock, reply["ticket"], timeout=120.0, poll_s=0.01)
    return time.monotonic() - started, record


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="repro-service-smoke-"))
    sock = workdir / "repro.sock"
    cache_file = workdir / "cache.json"
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(sock),
            "--tenants", "ci-a,ci-b",
            "--cache-file", str(cache_file),
            "--budget-ms", "60000",
        ],
    )
    try:
        for _ in range(200):
            try:
                request(sock, {"op": "ping"}, timeout=1.0)
                break
            except (FileNotFoundError, ConnectionError, OSError):
                time.sleep(0.05)
        else:
            raise RuntimeError("daemon did not come up")

        job = dict(design="fp_sub", iter_limit=8, node_limit=30_000, verify=True)
        fresh_wall, fresh = submit_and_time(
            sock, "ci-a", Job(name="smoke-first", **job)
        )
        assert fresh.status == "ok", fresh.error
        assert not fresh.cache_hit

        hit_wall, hit = submit_and_time(
            sock, "ci-b", Job(name="smoke-second", **job)
        )
        assert hit.status == "ok", hit.error
        assert hit.cache_hit, "second submission should be a cache hit"
        speedup = fresh_wall / max(hit_wall, 1e-9)
        print(
            f"fresh {fresh_wall:.3f}s, cached {hit_wall:.3f}s "
            f"-> {speedup:.1f}x"
        )
        assert speedup >= SPEEDUP_FLOOR, (
            f"cache hit only {speedup:.1f}x faster (< {SPEEDUP_FLOOR:.0f}x)"
        )

        # Phase 3: an edited revision of the same design.  The content
        # digest changes, so the record cache misses — but the queue's
        # e-graph artifact tier warm-starts it from the first run's
        # saturated graph instead of paying a full cold saturate.
        from repro.designs import get_design

        edited = get_design("fp_sub").verilog.replace(
            "output [9:0] out",
            "output [9:0] out,\n  output [4:0] expdiff_out",
        ).replace("endmodule", "  assign expdiff_out = expdiff;\nendmodule")
        warm_wall, warm = submit_and_time(
            sock, "ci-a", Job(name="smoke-edited", source=edited, **job)
        )
        assert warm.status == "ok", warm.error
        assert not warm.cache_hit, "edited source must miss the record cache"
        assert warm.warm_start.startswith("hit:"), (
            f"edited resubmission did not warm-start: {warm.warm_start!r}"
        )
        print(
            f"edited resubmission {warm_wall:.3f}s "
            f"(cold was {fresh_wall:.3f}s, {warm.warm_start})"
        )
        assert warm_wall < fresh_wall, (
            "warm-started resubmission was no faster than the cold run"
        )

        shutdown = request(sock, {"op": "shutdown"}, timeout=60.0)
        assert shutdown["ok"] and shutdown["persisted"] >= 1, shutdown
        server.wait(timeout=30)
        assert cache_file.exists(), "cache file was not persisted"
        print("service smoke OK")
        return 0
    finally:
        if server.poll() is None:
            server.terminate()
            server.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
