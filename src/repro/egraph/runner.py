"""Equality-saturation runner with an egg-style backoff scheduler.

The runner repeatedly (1) searches every enabled rule against a per-iteration
node index, (2) applies all matches constructively, (3) rebuilds congruence
and the analyses, until saturation or a node / iteration / time limit —
mirroring ``egg::Runner``.

The :class:`BackoffScheduler` keeps match-hungry rules (associativity,
commutativity) from drowning the graph: any rule producing more than its
budget of matches in one iteration is banned for exponentially growing
spans, exactly like egg's ``BackoffScheduler``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Sequence

from repro.egraph.egraph import EGraph
from repro.egraph.rewrite import Rewrite


class StopReason(Enum):
    SATURATED = "saturated"
    ITERATION_LIMIT = "iteration limit"
    NODE_LIMIT = "node limit"
    TIME_LIMIT = "time limit"


@dataclass
class IterationStats:
    """Per-iteration bookkeeping (sizes match the paper's Section V stats).

    Sizes are recorded both at iteration start (``*_before``) and after the
    rebuild (``*_after``), so real per-iteration growth is reported instead
    of the start-of-iteration snapshot being silently overwritten.
    """

    index: int
    nodes_before: int
    classes_before: int
    nodes_after: int = 0
    classes_after: int = 0
    applied: dict[str, int] = field(default_factory=dict)
    search_time: float = 0.0
    apply_time: float = 0.0
    rebuild_time: float = 0.0

    @property
    def nodes(self) -> int:
        """Size after the iteration's rebuild (backwards-compatible alias)."""
        return self.nodes_after

    @property
    def classes(self) -> int:
        """Classes after the iteration's rebuild (backwards-compatible)."""
        return self.classes_after

    @property
    def node_growth(self) -> int:
        """E-nodes added by this iteration."""
        return self.nodes_after - self.nodes_before

    def as_dict(self) -> dict:
        """JSON-serializable snapshot (drives ``RunRecord`` / perf logs)."""
        return {
            "index": self.index,
            "nodes_before": self.nodes_before,
            "nodes_after": self.nodes_after,
            "classes_before": self.classes_before,
            "classes_after": self.classes_after,
            "applied": dict(self.applied),
            "search_s": round(self.search_time, 6),
            "apply_s": round(self.apply_time, 6),
            "rebuild_s": round(self.rebuild_time, 6),
        }


@dataclass
class RunnerReport:
    """Outcome of a saturation run."""

    stop_reason: StopReason
    iterations: list[IterationStats]
    total_time: float

    @property
    def nodes(self) -> int:
        return self.iterations[-1].nodes if self.iterations else 0

    @property
    def classes(self) -> int:
        return self.iterations[-1].classes if self.iterations else 0

    def summary(self) -> str:
        """One-line human summary."""
        grown = sum(it.node_growth for it in self.iterations)
        return (
            f"{len(self.iterations)} iterations, {self.nodes} nodes "
            f"(+{grown} grown), {self.classes} classes, "
            f"stopped: {self.stop_reason.value}, {self.total_time:.2f}s"
        )

    def as_dict(self) -> dict:
        """JSON-serializable report (drives ``RunRecord`` / perf logs)."""
        return {
            "stop_reason": self.stop_reason.value,
            "total_time_s": round(self.total_time, 6),
            "nodes": self.nodes,
            "classes": self.classes,
            "iterations": [it.as_dict() for it in self.iterations],
        }


class BackoffScheduler:
    """Ban rules that over-match, with doubling ban lengths."""

    def __init__(self, match_limit: int = 1_000, ban_length: int = 2) -> None:
        self.match_limit = match_limit
        self.ban_length = ban_length
        self._banned_until: dict[str, int] = {}
        self._times_banned: dict[str, int] = {}

    def enabled(self, rule: Rewrite, iteration: int) -> bool:
        return self._banned_until.get(rule.name, -1) < iteration

    def budget(self, rule: Rewrite) -> int:
        shift = self._times_banned.get(rule.name, 0)
        return self.match_limit << shift

    def record(self, rule: Rewrite, matches: int, iteration: int) -> None:
        if matches < self.budget(rule):
            return
        banned = self._times_banned.get(rule.name, 0)
        self._times_banned[rule.name] = banned + 1
        self._banned_until[rule.name] = iteration + (self.ban_length << banned)


class Runner:
    """Drive a set of rewrites over an e-graph until a stop condition."""

    def __init__(
        self,
        egraph: EGraph,
        rules: Sequence[Rewrite],
        iter_limit: int = 16,
        node_limit: int = 50_000,
        time_limit: float = 120.0,
        scheduler: BackoffScheduler | None = None,
        check_invariants: bool = False,
    ) -> None:
        self.egraph = egraph
        self.rules = list(rules)
        self.iter_limit = iter_limit
        self.node_limit = node_limit
        self.time_limit = time_limit
        self.scheduler = scheduler if scheduler is not None else BackoffScheduler()
        #: Assert e-graph invariants after every rebuild (tests only — the
        #: check is a full sweep).
        self.check_invariants = check_invariants
        self._spent_once_rules: set[str] = set()

    def run(self) -> RunnerReport:
        """Run to saturation or limits; the e-graph is mutated in place.

        The time budget is a *deadline* threaded through the search and
        apply loops, so one slow phase cannot blow arbitrarily past
        ``time_limit`` — the run stops mid-iteration (after a rebuild that
        leaves the e-graph consistent) with ``StopReason.TIME_LIMIT``.
        """
        start = time.perf_counter()
        deadline = start + self.time_limit
        iterations: list[IterationStats] = []
        stop: StopReason | None = None

        self.egraph.rebuild()
        if self.check_invariants:
            self.egraph.check_invariants()
        for iteration in range(self.iter_limit):
            stats = IterationStats(
                index=iteration,
                nodes_before=self.egraph.node_count,
                classes_before=self.egraph.class_count,
            )
            version_before = self.egraph.version
            index = self.egraph.nodes_by_op()

            # --- search phase -------------------------------------------
            t0 = time.perf_counter()
            matches: list[tuple[Rewrite, list[tuple[int, dict]]]] = []
            for rule in self.rules:
                if time.perf_counter() > deadline:
                    stop = StopReason.TIME_LIMIT
                    break
                if rule.once and rule.name in self._spent_once_rules:
                    continue
                if not self.scheduler.enabled(rule, iteration):
                    continue
                found = rule.search(self.egraph, index, self.scheduler.budget(rule))
                self.scheduler.record(rule, len(found), iteration)
                if found:
                    matches.append((rule, found))
            stats.search_time = time.perf_counter() - t0

            # --- apply phase --------------------------------------------
            t0 = time.perf_counter()
            if stop is None:
                for rule, found in matches:
                    applied = 0
                    for class_id, env in found:
                        if rule.apply(self.egraph, class_id, env):
                            applied += 1
                        if self.egraph.node_count > self.node_limit:
                            stop = StopReason.NODE_LIMIT
                            break
                        if time.perf_counter() > deadline:
                            stop = StopReason.TIME_LIMIT
                            break
                    if applied:
                        stats.applied[rule.name] = applied
                        if rule.once:
                            self._spent_once_rules.add(rule.name)
                    if stop is not None:
                        break
            stats.apply_time = time.perf_counter() - t0

            # --- rebuild phase (always: leave the graph consistent) -----
            t0 = time.perf_counter()
            self.egraph.rebuild()
            stats.rebuild_time = time.perf_counter() - t0

            stats.nodes_after = self.egraph.node_count
            stats.classes_after = self.egraph.class_count
            iterations.append(stats)
            if self.check_invariants:
                self.egraph.check_invariants()

            if stop is not None:
                break
            if self.egraph.version == version_before:
                stop = StopReason.SATURATED
                break
            if self.egraph.node_count > self.node_limit:
                stop = StopReason.NODE_LIMIT
                break
            if time.perf_counter() > deadline:
                stop = StopReason.TIME_LIMIT
                break

        return RunnerReport(
            stop_reason=stop if stop is not None else StopReason.ITERATION_LIMIT,
            iterations=iterations,
            total_time=time.perf_counter() - start,
        )
