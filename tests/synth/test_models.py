"""Section IV-D theoretical delay/area models: sanity and monotonicity."""

import pytest

from repro.ir import ops
from repro.synth import area_model, delay_model


WIDE_OPS = [ops.ADD, ops.SUB, ops.MUL, ops.LZC, ops.LT, ops.EQ, ops.MUX]


@pytest.mark.parametrize("op", WIDE_OPS)
def test_models_monotone_in_width(op):
    for narrow, wide in ((4, 8), (8, 16), (16, 42)):
        kw = dict(operand_widths=(narrow, narrow))
        kw_wide = dict(operand_widths=(wide, wide))
        assert delay_model(op, narrow, **kw) <= delay_model(op, wide, **kw_wide)
        assert area_model(op, narrow, **kw) < area_model(op, wide, **kw_wide)


def test_wiring_is_free():
    for op in (ops.TRUNC, ops.SLICE, ops.CONCAT, ops.VAR, ops.CONST, ops.ASSUME):
        assert delay_model(op, 42) == 0.0
        assert area_model(op, 42) == 0.0


def test_constant_shift_is_free():
    assert delay_model(ops.SHR, 42, (42, 6), shift_levels=None) == 0.0
    assert area_model(ops.SHR, 42, (42, 6), shift_levels=None) == 0.0


def test_variable_shift_scales_with_levels():
    one = delay_model(ops.SHR, 42, (42, 6), shift_levels=1)
    five = delay_model(ops.SHR, 42, (42, 6), shift_levels=5)
    assert five > one
    assert area_model(ops.SHR, 42, (42, 6), shift_levels=5) > area_model(
        ops.SHR, 42, (42, 6), shift_levels=1
    )


def test_const_operand_discounts():
    full = delay_model(ops.ADD, 12, (12, 12))
    inc = delay_model(ops.ADD, 12, (12, 1), const_operand=True)
    assert inc < full
    assert area_model(ops.ADD, 12, (12, 1), const_operand=True) < area_model(
        ops.ADD, 12, (12, 12)
    )


def test_comparator_cheaper_than_adder():
    assert delay_model(ops.LT, 1, (12, 12)) <= delay_model(ops.ADD, 13, (12, 12))


def test_paper_scale_42_vs_12_bit_subtract():
    """The case study's headline: narrow subtractors are much cheaper."""
    wide_d = delay_model(ops.SUB, 42, (42, 42))
    narrow_d = delay_model(ops.SUB, 12, (12, 12))
    assert narrow_d < wide_d
    assert area_model(ops.SUB, 12, (12, 12)) < 0.35 * area_model(
        ops.SUB, 42, (42, 42)
    )
