"""Word-level intermediate language for combinational datapath logic.

This is the intermediate language of Section IV of the paper: combinational
logic over unsigned bitvectors, with an ``LZC`` (leading-zero count) operator
added so operator-specific rewrites can fire, and an ``ASSUME`` operator that
encodes the sub-domain equivalences of Section III.

Semantics (see DESIGN.md): ``+``, ``-``, ``*``, ``<<`` are exact over the
integers — widths grow as needed and wrapping is expressed explicitly with
:data:`~repro.ir.ops.TRUNC`.  The evaluator works over ``Z' = Z ∪ {*}``
(:data:`~repro.ir.evaluate.BOT`), where ``*`` models a failed ``ASSUME``.
"""

from repro.ir.ops import (
    Op,
    OPS_BY_NAME,
    ABS,
    ADD,
    AND,
    ASSUME,
    CONCAT,
    CONST,
    EQ,
    GE,
    GT,
    LE,
    LNOT,
    LT,
    LZC,
    MAX,
    MIN,
    MUL,
    MUX,
    NE,
    NEG,
    NOT,
    OR,
    SHL,
    SHR,
    SLICE,
    SUB,
    TRUNC,
    VAR,
    XOR,
)
from repro.ir.expr import (
    Expr,
    abs_,
    assume,
    bitnot,
    concat,
    const,
    eq,
    ge,
    gt,
    le,
    lnot,
    lt,
    lzc,
    max_,
    min_,
    mux,
    ne,
    slice_,
    trunc,
    var,
)
from repro.ir.evaluate import BOT, evaluate, evaluate_total, input_variables
from repro.ir.cones import cone_inputs, cone_size, shared_weight

__all__ = [
    "cone_inputs",
    "cone_size",
    "shared_weight",
    "Op",
    "OPS_BY_NAME",
    "Expr",
    "BOT",
    "evaluate",
    "evaluate_total",
    "input_variables",
    # ops
    "VAR", "CONST", "ADD", "SUB", "MUL", "NEG", "SHL", "SHR",
    "AND", "OR", "XOR", "NOT", "LNOT", "LT", "LE", "GT", "GE",
    "EQ", "NE", "MUX", "LZC", "TRUNC", "SLICE", "CONCAT", "ABS",
    "MIN", "MAX", "ASSUME",
    # builders
    "var", "const", "mux", "assume", "lzc", "trunc", "slice_", "concat",
    "lt", "le", "gt", "ge", "eq", "ne", "lnot", "bitnot", "abs_",
    "min_", "max_",
]
