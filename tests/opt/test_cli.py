"""The command-line interface and the DOT export."""

import pytest

from repro.analysis import DatapathAnalysis
from repro.cli import build_parser, main, parse_range
from repro.egraph import EGraph
from repro.egraph.dot import to_dot
from repro.intervals import IntervalSet
from repro.ir import gt, mux, var
from repro.rtl import module_to_ir

SOURCE = """
module toy (input [7:0] a, input [7:0] b, output [8:0] y);
  wire [8:0] s = a + b;
  assign y = (s > 9'd510) ? 9'd510 : s;
endmodule
"""


class TestCli:
    def test_parse_range(self):
        name, iset = parse_range("x=128:255")
        assert name == "x" and iset == IntervalSet.of(128, 255)

    def test_parse_range_rejects_junk(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_range("x128")

    def test_end_to_end(self, tmp_path, capsys):
        src = tmp_path / "toy.v"
        src.write_text(SOURCE)
        out = tmp_path / "opt.v"
        code = main([str(src), "-o", str(out), "--iters", "5"])
        assert code == 0
        text = out.read_text()
        assert "module optimized" in text
        # Round-trips through our own frontend and lost the dead clamp.
        outs = module_to_ir(text)
        assert "y" in outs
        report = capsys.readouterr().err
        assert "delay" in report and "EQUIVALENT" in report

    def test_parser_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["f.v", "--range", "x=0:3", "--no-verify", "--nodes", "100"]
        )
        assert args.ranges[0][0] == "x"
        assert args.no_verify and args.nodes == 100


class TestDot:
    def test_dot_contains_classes_and_ranges(self):
        g = EGraph([DatapathAnalysis()])
        x = var("x", 4)
        g.add_expr(mux(gt(x, 2), x + 1, x))
        g.rebuild()
        text = to_dot(g)
        assert text.startswith("digraph egraph")
        assert "cluster_" in text
        assert "[0, 15]" in text  # the interval annotation
        assert "->" in text

    def test_dot_respects_limit(self):
        g = EGraph([DatapathAnalysis()])
        for i in range(30):
            g.add_expr(var(f"v{i}", 4) + i)
        text = to_dot(g, max_classes=5)
        assert text.count("subgraph") == 5
