"""Batch optimization sessions over the designs registry.

A :class:`Session` runs a list of named :class:`Job`\\ s — each referencing
a registry design plus schedule knobs — and returns one JSON-serializable
:class:`RunRecord` per job.  Jobs are plain picklable value objects, so a
session can opt into a :class:`~concurrent.futures.ProcessPoolExecutor`
(``parallel=True``) and fan the batch out across cores; each worker
reconstructs the design from the registry by name (IR trees and interned
interval sets never cross the process boundary).

The record stream is the bench trajectory format: ``RunRecord.to_json`` /
``from_json`` round-trip exactly, and ``benchmarks/test_bench_perf.py``
appends records to ``BENCH_perf.json`` through it.
"""

from __future__ import annotations

import hashlib
import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Iterable, Sequence

from repro.designs.registry import DESIGNS, Design, design_roots, get_design
from repro.ir.expr import subterms
from repro.pipeline.budget import (
    Budget,
    BudgetPool,
    allocator_for,
    concurrent_children,
)
from repro.pipeline.context import PipelineContext
from repro.pipeline.pipeline import Pipeline
from repro.pipeline.shard import MergeShards, Shard, ShardSchedule
from repro.pipeline.stages import (
    Extract,
    Ingest,
    SaveEGraph,
    Saturate,
    Stage,
    Verify,
    WarmStart,
)
from repro.rewrites.rulesets import casesplit_ruleset, compose_rules, ruleset
from repro.rtl import module_to_ir
from repro.synth.treecost import dag_cost


@dataclass(frozen=True)
class Job:
    """One named unit of batch work: a registry design plus schedule knobs.

    ``phases`` opts into a phased schedule: each entry is a tuple of named
    rulesets (see :data:`~repro.rewrites.rulesets.RULESETS`) run as its own
    ``Saturate`` stage with ``phase_iters`` iterations.  An empty ``phases``
    runs the single-phase default composition.

    ``shards``/``auto_shard_nodes`` opt into intra-design cone sharding
    (:mod:`repro.pipeline.shard`): ``shards=N`` clusters output cones down
    to at most N shared-nothing shards (``0`` leaves sharding off unless
    ``auto_shard_nodes`` is set, in which case a multi-output design whose
    DAG reaches that size auto-splits per output).  ``shard_parallel`` fans
    shards out over a nested process pool — two-level parallelism when the
    session itself runs ``parallel=True``.  Sharding composes with the
    single-phase schedule only (phased schedules raise).

    ``budget`` puts the whole job under one accounted
    :class:`~repro.pipeline.budget.Budget` (every stage — including the
    anytime ``Extract`` and the interruptible ``Verify`` — and every shard,
    split by ``budget_policy``, draws from that pool and races one
    deadline); the classic per-stage knobs still apply as ceilings.  A
    session-level budget intersects in on top (see :class:`Session`).
    ``verify_budget`` is a further ceiling on the ``Verify`` stage alone
    (its ``time_s`` spans from stage start, ``bdd_nodes`` caps BDD growth).
    """

    name: str
    design: str
    iter_limit: int | None = None
    node_limit: int | None = None
    time_limit: float = 60.0
    split_threshold: int | None = 1
    enable_assume: bool = True
    enable_condition: bool = True
    verify: bool = False
    phases: tuple[tuple[str, ...], ...] = ()
    phase_iters: int = 4
    shards: int = 0
    auto_shard_nodes: int | None = None
    shard_parallel: bool = False
    budget: Budget | None = None
    budget_policy: str = "adaptive"
    verify_budget: Budget | None = None
    #: Inline Verilog for ad-hoc submissions.  When set, ``design`` is a
    #: *label* (used for warm-start family lookup and reporting), not a
    #: registry key; input ranges are inherited from the same-label registry
    #: design for the variables that survive the edit (see
    #: :func:`resolve_design`).
    source: str | None = None
    #: Path to a persisted e-graph artifact to seed saturation from
    #: (monolithic schedules only).  An incompatible or missing artifact
    #: degrades to a cold start, recorded in ``RunRecord.warm_start``.
    warm_start: str | None = None
    #: Path to persist the saturated e-graph to, for later warm starts.
    save_egraph: str | None = None
    #: Sharded schedules only: after the merge, re-union the shard e-graphs
    #: into one graph and run a short budgeted stitch saturation to recover
    #: the cross-cone sharing per-output shards give up.
    stitch: bool = False
    #: Extraction objective: ``"greedy"`` (the classic per-root tree-cost
    #: extractor) or ``"ilp"`` (:class:`repro.solve.extract_opt.OptimalExtract`
    #: — greedy warm start refined to DAG-cost optimality by the governed
    #: branch-and-bound; monolithic schedules only).
    extract_objective: str = "greedy"
    #: Pareto-front characterization after extraction: ``""`` (off),
    #: ``"epsilon"`` or ``"weighted"`` (see :mod:`repro.solve.pareto`;
    #: monolithic schedules only).
    pareto: str = ""


#: Job knobs that select *which rewrites run* — the compatibility contract
#: for reusing a persisted e-graph.  Exploration limits (iterations, nodes,
#: wall) are excluded on purpose: a graph saturated deeper than the current
#: budget is still sound to seed from.
_RULESET_FIELDS = (
    "enable_assume",
    "enable_condition",
    "split_threshold",
    "phases",
    "phase_iters",
    # The extraction objective does not change the saturated e-graph, but a
    # persisted artifact's provenance should say which objective its runs
    # were measured under — crossing greedy-schedule artifacts into ilp runs
    # (and vice versa) silently mixes bench series, so the key separates
    # them.
    "extract_objective",
)


def job_schedule_key(job: Job) -> str:
    """Digest of the ruleset-selecting knobs (artifact compatibility key)."""
    payload = repr(
        tuple(getattr(job, name) for name in _RULESET_FIELDS)
    ).encode()
    return hashlib.sha256(payload).hexdigest()


def resolve_design(job: Job) -> tuple[dict, dict]:
    """``(roots, input_ranges)`` of the job's design — source-aware.

    Registry jobs resolve through the (memoized) registry.  Ad-hoc
    ``job.source`` jobs elaborate their Verilog directly; when the label
    also names a registry design, that design's input-range constraints are
    inherited for every variable still present in the edited source — an
    edit that only restructures logic over the same inputs keeps the exact
    range assumptions, which is what makes its warm start compatible.
    """
    if job.source is None:
        design = get_design(job.design)
        return design_roots(job.design), design.input_ranges
    roots = module_to_ir(job.source)
    ranges: dict = {}
    if job.design in DESIGNS:
        base = DESIGNS[job.design].input_ranges
        variables = {
            node.var_name
            for node in subterms(tuple(roots.values()))
            if node.is_var
        }
        ranges = {name: iset for name, iset in base.items() if name in variables}
    return roots, ranges


def job_design(job: Job) -> Design:
    """The :class:`Design` a job runs (ad-hoc sources get a synthetic one)."""
    if job.source is None:
        return get_design(job.design)
    roots, ranges = resolve_design(job)
    output = "out" if "out" in roots else sorted(roots)[0]
    return Design(
        name=job.design,
        verilog=job.source,
        output=output,
        input_ranges=ranges,
        description="ad-hoc source submission",
    )


@dataclass
class RunRecord:
    """JSON-serializable outcome of one job (the bench trajectory row)."""

    job: str
    design: str
    output: str = ""
    status: str = "ok"  # "ok" | "error"
    stop_reason: str = ""
    iterations: int = 0
    nodes: int = 0
    classes: int = 0
    #: Final e-graph nodes per saturation-wall second (0.0 when no
    #: saturation ran) — the raw-speed engine metric the perf series guards.
    nodes_per_s: float = 0.0
    original_delay: float = 0.0
    original_area: float = 0.0
    optimized_delay: float = 0.0
    optimized_area: float = 0.0
    delay_improvement: float = 0.0
    area_improvement: float = 0.0
    verified: bool | None = None
    runtime_s: float = 0.0
    stage_timings: dict[str, float] = field(default_factory=dict)
    #: Number of intra-design shards the run split into (0 = monolithic).
    shards: int = 0
    #: Per-shard wall seconds, keyed by shard name (empty when monolithic).
    shard_walls: dict[str, float] = field(default_factory=dict)
    #: Which substrate ran the shards: "process", or "inline" when serial /
    #: when a nested pool could not start (empty for monolithic runs) — so
    #: perf records never pass off a silently-serialized run as parallel.
    shard_pool: str = ""
    #: Resource-governance ledger: the run's budget pool plus
    #: allocated-vs-spent per stage and per shard (empty when ungoverned).
    budget: dict = field(default_factory=dict)
    #: Anytime-extraction outcome: "complete", "deadline", or a
    #: comma-joined set when shards disagree (empty for pre-anytime runs).
    extract_status: str = ""
    #: How the condensed output's equivalence was established:
    #: "exhaustive" | "bdd" | "random" | "timeout" (empty when unverified).
    verify_method: str = ""
    #: Service provenance: which tenant submitted the job ("" for direct
    #: Session runs), whether the record came out of the result cache
    #: instead of a fresh pipeline run, and how long the job sat queued
    #: before dispatch.  Absent from pre-service records — ``from_dict``
    #: defaults them, so old ``BENCH_perf.json`` entries still load.
    tenant: str = ""
    cache_hit: bool = False
    queue_wait_s: float = 0.0
    #: Warm-start provenance: ``"hit:<digest12>"`` when saturation was
    #: seeded from a persisted e-graph, ``"cold:<reason>"`` when a requested
    #: warm start fell back, ``""`` when none was requested.
    warm_start: str = ""
    #: Stitch-phase provenance (``""`` when the phase didn't run).
    stitch: str = ""
    #: Which extraction objective produced the result: "greedy" | "ilp"
    #: (empty for pre-solver records — ``from_dict`` defaults it).
    extract_objective: str = ""
    #: Pareto-characterization summary ("mode:status:points", "" when the
    #: stage didn't run).
    pareto: str = ""
    #: DAG cost of the condensed output (shared subterms priced once) — the
    #: objective the ILP extractor optimizes; ``optimized_delay``/``area``
    #: stay the legacy tree costs.  0.0 for pre-solver records.
    dag_delay: float = 0.0
    dag_area: float = 0.0
    error: str | None = None

    # -------------------------------------------------------- serialization
    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunRecord":
        return cls.from_dict(json.loads(text))


def job_stages(job: Job, design) -> list[Stage]:
    """The stage list a job's schedule expands to (shared with the CLI)."""
    iter_limit = job.iter_limit if job.iter_limit is not None else design.iterations
    node_limit = job.node_limit if job.node_limit is not None else design.node_limit
    sharding = job.shards > 0 or job.auto_shard_nodes is not None
    if sharding and job.phases:
        raise ValueError("sharding composes with the single-phase schedule only")
    if sharding and job.warm_start:
        raise ValueError("warm-start composes with monolithic schedules only")
    if job.stitch and not sharding:
        raise ValueError("stitch requires a sharded schedule")
    if job.extract_objective not in ("greedy", "ilp"):
        raise ValueError(f"unknown extract objective: {job.extract_objective!r}")
    if sharding and job.extract_objective != "greedy":
        # Shards extract inside their worker schedules; the ILP refinement
        # plans its own per-output cones and would double-decompose.
        raise ValueError("extract_objective='ilp' composes with monolithic schedules only")
    if sharding and job.pareto:
        raise ValueError("pareto composes with monolithic schedules only")
    warm = job.warm_start is not None
    stages: list[Stage] = [
        Ingest(source=design.verilog, seed_egraph=not (sharding or warm))
    ]
    if warm:
        stages.append(WarmStart(job.warm_start, schedule=job_schedule_key(job)))
    if sharding:
        schedule = ShardSchedule(
            iter_limit=iter_limit,
            node_limit=node_limit,
            time_limit=job.time_limit,
            split_threshold=job.split_threshold,
            enable_assume=job.enable_assume,
            enable_condition=job.enable_condition,
            budget_policy=job.budget_policy,
            ship_egraph=job.stitch,
        )
        stages.append(
            Shard(
                schedule,
                max_shards=job.shards if job.shards > 0 else None,
                auto_threshold=job.auto_shard_nodes,
                parallel=job.shard_parallel,
            )
        )
        stages.append(
            MergeShards(
                stitch=job.stitch,
                stitch_rules=compose_rules(
                    job.split_threshold, job.enable_assume, job.enable_condition
                )
                if job.stitch
                else None,
            )
        )
        if job.save_egraph:
            stages.append(
                SaveEGraph(job.save_egraph, schedule=job_schedule_key(job))
            )
        if job.verify:
            stages.append(Verify(budget=job.verify_budget))
        return stages
    if job.phases:
        for index, phase in enumerate(job.phases):
            rules = []
            for name in phase:
                if name == "casesplit":
                    rules += casesplit_ruleset(
                        job.split_threshold if job.split_threshold is not None else 1
                    )
                else:
                    rules += ruleset(name)
            stages.append(
                Saturate(
                    rules,
                    iter_limit=job.phase_iters,
                    node_limit=node_limit,
                    time_limit=job.time_limit,
                    label=f"saturate:{'+'.join(phase) or index}",
                )
            )
    else:
        stages.append(
            Saturate(
                compose_rules(
                    job.split_threshold, job.enable_assume, job.enable_condition
                ),
                iter_limit=iter_limit,
                node_limit=node_limit,
                time_limit=job.time_limit,
            )
        )
    if job.save_egraph:
        stages.append(SaveEGraph(job.save_egraph, schedule=job_schedule_key(job)))
    if job.extract_objective == "ilp":
        # Runtime import: pipeline sits below solve in the package DAG
        # (same discipline as WarmStart -> service.cache).
        from repro.solve.extract_opt import OptimalExtract  # lint: ok(AR-LAYER): solve layers above pipeline; ILP extraction is an opt-in stage resolved at job-build time

        stages.append(OptimalExtract())
    else:
        stages.append(Extract())
    if job.pareto:
        from repro.solve.pareto import ParetoSweep  # lint: ok(AR-LAYER): solve layers above pipeline; Pareto sweep is an opt-in stage resolved at job-build time

        stages.append(ParetoSweep(mode=job.pareto))
    if job.verify:
        stages.append(Verify(budget=job.verify_budget))
    return stages


def record_from_context(
    job_name: str, design_name: str, output: str, ctx: PipelineContext
) -> RunRecord:
    """Condense a finished pipeline context into one record."""
    report = ctx.report
    before = ctx.original_costs.get(output)
    after = ctx.optimized_costs.get(output)
    verdict = ctx.equivalence.get(output)
    delay_gain = area_gain = 0.0
    if before is not None and after is not None:
        if before.delay:
            delay_gain = 1.0 - after.delay / before.delay
        if before.area:
            area_gain = 1.0 - after.area / before.area
    if ctx.shard_results:
        # Sharded run: sizes sum over the shards' final e-graphs, and the
        # stop reason aggregates (a single value when the shards agree).
        finals = [r.reports[-1] for r in ctx.shard_results if r.reports]
        nodes = sum(r.nodes for r in finals)
        classes = sum(r.classes for r in finals)
        stop_reason = ",".join(
            sorted({r.stop_reason.value for r in finals})
        )
    else:
        nodes = report.nodes if report else 0
        classes = report.classes if report else 0
        stop_reason = report.stop_reason.value if report else ""
    saturate_s = sum(r.total_time for r in ctx.reports)
    nodes_per_s = round(nodes / saturate_s, 1) if saturate_s else 0.0
    stage_timings = ctx.stage_timings()
    for result in ctx.shard_results:
        # Fold each shard's internal breakdown in under its shard name —
        # sharded records keep the saturate/extract split monolithic ones
        # have.
        for label, seconds in result.stage_timings.items():
            stage_timings[f"{result.name}/{label}"] = seconds
    if ctx.governor is not None:
        budget_block = ctx.governor.as_dict()
    elif "shard_budgets" in ctx.artifacts:
        budget_block = {"stages": dict(ctx.artifacts["shard_budgets"])}
    else:
        budget_block = {}
    extract_statuses = {r.status for r in ctx.extract_reports}
    extract_statuses.update(
        r.extract_status for r in ctx.shard_results if r.extract_status
    )
    dag_delay = dag_area = 0.0
    extracted = ctx.extracted.get(output)
    if extracted is not None:
        try:
            dag = dag_cost(extracted, ctx.input_ranges)
            dag_delay, dag_area = dag.delay, dag.area
        except RecursionError:  # pathological depth: keep the record usable
            pass
    return RunRecord(
        job=job_name,
        design=design_name,
        output=output,
        status="ok",
        stop_reason=stop_reason,
        iterations=sum(len(r.iterations) for r in ctx.reports),
        nodes=nodes,
        classes=classes,
        nodes_per_s=nodes_per_s,
        original_delay=before.delay if before else 0.0,
        original_area=before.area if before else 0.0,
        optimized_delay=after.delay if after else 0.0,
        optimized_area=after.area if after else 0.0,
        delay_improvement=delay_gain,
        area_improvement=area_gain,
        verified=verdict.equivalent if verdict is not None else None,
        runtime_s=ctx.total_seconds,
        stage_timings=stage_timings,
        shards=len(ctx.shard_results),
        shard_walls=dict(ctx.artifacts.get("shard_walls", {})),
        shard_pool=ctx.artifacts.get("shard_pool", ""),
        budget=budget_block,
        extract_status=",".join(sorted(extract_statuses)),
        verify_method=verdict.method if verdict is not None else "",
        warm_start=str(ctx.artifacts.get("warm_start", "")),
        stitch=str(ctx.artifacts.get("stitch_status", "")),
        extract_objective=str(ctx.artifacts.get("extract_objective", "")),
        pareto=str(ctx.artifacts.get("pareto", {}).get("summary", ""))
        if isinstance(ctx.artifacts.get("pareto"), dict)
        else "",
        dag_delay=dag_delay,
        dag_area=dag_area,
    )


def execute_job(job: Job) -> RunRecord:
    """Run one job to a record.  Top-level so process pools can pickle it;
    failures come back as ``status="error"`` records, never exceptions.

    A failing run still reports whatever the pipeline recorded before the
    raise — per-stage wall timings and the governor's allocated-vs-spent
    ledger — so e.g. a strict ``Verify`` failure is diagnosable from the
    trajectory format (which stage burned the time, what spend the budget
    saw) instead of reducing to a bare error string.
    """
    ctx = PipelineContext()
    try:
        design = job_design(job)
        ctx.input_ranges = dict(design.input_ranges)
        Pipeline(job_stages(job, design)).run(
            ctx=ctx,
            budget=job.budget,
            budget_policy=job.budget_policy,
        )
        return record_from_context(job.name, job.design, design.output, ctx)
    except Exception as err:  # exercised via bad jobs and strict Verify
        return RunRecord(
            job=job.name,
            design=job.design,
            status="error",
            error=f"{type(err).__name__}: {err}",
            runtime_s=ctx.total_seconds,
            stage_timings=ctx.stage_timings(),
            budget=ctx.governor.as_dict() if ctx.governor is not None else {},
        )


class Session:
    """A batch of named jobs over the designs registry.

    >>> session = Session.for_designs(iter_limit=4, node_limit=8000)
    >>> records = session.run(parallel=True)   # doctest: +SKIP

    ``parallel=True`` fans jobs out over a process pool (opt-in: workers
    re-import the package, so tiny batches are faster serially); records
    always come back in job order.

    ``budget`` is a *session-level* ceiling: one
    :class:`~repro.pipeline.budget.Budget` split across the jobs by
    ``budget_policy`` and intersected with any per-job budget.  Serial runs
    draw live from the pool (the adaptive policy recycles fast jobs'
    slack); process-pool runs race the session's absolute deadline —
    ``time.monotonic`` is machine-wide, so the ceiling survives the fan-out
    across worker processes.
    """

    def __init__(
        self,
        jobs: Iterable[Job] = (),
        parallel: bool = False,
        max_workers: int | None = None,
        budget: Budget | None = None,
        budget_policy: str = "adaptive",
        clock=None,
    ) -> None:
        self.jobs: list[Job] = list(jobs)
        self.parallel = parallel
        self.max_workers = max_workers
        self.budget = budget
        self.budget_policy = budget_policy
        # Injectable monotonic clock for deterministic budget-ledger tests.
        self.clock = clock if clock is not None else time.monotonic

    # ------------------------------------------------------------- building
    def add(self, job: Job | None = None, /, **kwargs) -> Job:
        """Append a job (either prebuilt, or from ``Job(**kwargs)``)."""
        if job is None:
            kwargs.setdefault("name", kwargs.get("design", f"job-{len(self.jobs)}"))
            job = Job(**kwargs)
        self.jobs.append(job)
        return job

    @classmethod
    def for_designs(
        cls,
        names: Sequence[str] | None = None,
        parallel: bool = False,
        max_workers: int | None = None,
        budget: Budget | None = None,
        budget_policy: str = "adaptive",
        **overrides,
    ) -> "Session":
        """A session with one job per registry design (or the named ones).

        ``budget``/``budget_policy`` are the *session-level* ceiling;
        per-job knobs (including ``Job.budget``) go through ``overrides``.
        """
        session = cls(
            parallel=parallel,
            max_workers=max_workers,
            budget=budget,
            budget_policy=budget_policy,
        )
        # One policy end-to-end unless a job-level override says otherwise:
        # the session splits its ceiling across jobs with it, and each job's
        # shard fan-out splits its slice the same way.
        overrides.setdefault("budget_policy", budget_policy)
        for name in names if names is not None else sorted(DESIGNS):
            session.add(Job(name=name, design=name, **overrides))
        return session

    # -------------------------------------------------------------- running
    def run(
        self,
        parallel: bool | None = None,
        max_workers: int | None = None,
    ) -> list[RunRecord]:
        """Execute every job; one record per job, in order."""
        use_parallel = self.parallel if parallel is None else parallel
        workers = max_workers if max_workers is not None else self.max_workers
        if self.budget is None:
            if use_parallel and len(self.jobs) > 1:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    return list(pool.map(execute_job, self.jobs))
            return [execute_job(job) for job in self.jobs]
        return self._run_budgeted(use_parallel, workers)

    def _run_budgeted(
        self, use_parallel: bool, workers: int | None
    ) -> list[RunRecord]:
        """Enforce the session ceiling: every job draws from one pool."""
        allocator = allocator_for(self.budget_policy)
        weights = [1.0] * len(self.jobs)
        if use_parallel and len(self.jobs) > 1:
            children = concurrent_children(
                self.budget, weights, allocator, self.clock()
            )
            jobs = [
                replace(job, budget=self._ceiling(job, child))
                for job, child in zip(self.jobs, children, strict=True)
            ]
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(execute_job, jobs))
        pool = BudgetPool(self.budget, weights, allocator)
        records = []
        for job in self.jobs:
            record = execute_job(replace(job, budget=self._ceiling(job, pool.draw())))
            records.append(record)
            # Debit what the job's governor ledger says it consumed (its
            # "nodes" are e-nodes grown — same unit as the pool's quota;
            # RunRecord.nodes is the final absolute graph size, which would
            # wrongly charge every job its seed nodes too).
            spent = record.budget.get("spent", {}) if record.budget else {}
            pool.settle(
                nodes=spent.get("nodes", 0),
                iters=spent.get("iters", record.iterations),
                matches=spent.get("matches", 0),
                bdd_nodes=spent.get("bdd_nodes", 0),
            )
        return records

    @staticmethod
    def _ceiling(job: Job, child: Budget) -> Budget:
        return child if job.budget is None else job.budget.intersect(child)
