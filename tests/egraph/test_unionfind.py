"""Union-find invariants (unit + property)."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.egraph import UnionFind


def test_singletons_are_own_roots():
    uf = UnionFind()
    ids = [uf.make_set() for _ in range(10)]
    assert [uf.find(i) for i in ids] == ids


def test_union_connects():
    uf = UnionFind()
    a, b, c = (uf.make_set() for _ in range(3))
    uf.union(a, b)
    assert uf.in_same_set(a, b)
    assert not uf.in_same_set(a, c)
    uf.union(b, c)
    assert uf.in_same_set(a, c)


def test_union_returns_root_and_absorbed():
    uf = UnionFind()
    a, b = uf.make_set(), uf.make_set()
    root, absorbed = uf.union(a, b)
    assert {root, absorbed} == {a, b}
    assert uf.find(a) == root
    root2, absorbed2 = uf.union(a, b)
    assert root2 == absorbed2 == root


@given(st.lists(st.tuples(st.integers(0, 49), st.integers(0, 49)), max_size=200))
def test_matches_naive_partition(pairs):
    """Union-find agrees with a naive set-merging implementation."""
    uf = UnionFind()
    for _ in range(50):
        uf.make_set()
    naive = [{i} for i in range(50)]

    def naive_find(x):
        for group in naive:
            if x in group:
                return group
        raise AssertionError

    for a, b in pairs:
        uf.union(a, b)
        ga, gb = naive_find(a), naive_find(b)
        if ga is not gb:
            ga |= gb
            naive.remove(gb)

    for x in range(50):
        for y in range(50):
            assert uf.in_same_set(x, y) == (naive_find(x) is naive_find(y))


def test_path_compression_keeps_answers_stable():
    uf = UnionFind()
    ids = [uf.make_set() for _ in range(100)]
    rng = random.Random(3)
    for _ in range(80):
        uf.union(rng.choice(ids), rng.choice(ids))
    before = [uf.find(i) for i in ids]
    after = [uf.find(i) for i in ids]
    assert before == after
