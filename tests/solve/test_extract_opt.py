"""Contract tests for the ILP extraction stage (`OptimalExtract`).

Three guarantees, each pinned deterministically:

* **never worse than greedy** — on every registry design the ilp objective's
  DAG cost is <= the greedy objective's (the adoption gate measures the
  rebuilt trees, so this holds whatever the solver modeled);
* **anytime / governed** — a tight fake-clock deadline keeps the greedy
  incumbent with ``"ilp:incumbent"`` provenance, never raises, and the
  ledger's ``extract`` row covers the spend; a quota blow-up degrades to
  greedy with ``"fallback:quota"`` provenance;
* **record compatibility** — the new ``RunRecord`` fields round-trip JSON
  and legacy rows (pre-solver ``BENCH_perf.json`` entries) still load.
"""

from __future__ import annotations

import pytest

from repro.designs import DESIGNS
from repro.pipeline import (
    Budget,
    Extract,
    Ingest,
    Job,
    Pipeline,
    RunRecord,
    Saturate,
    execute_job,
)
from repro.solve.extract_opt import OptimalExtract
from repro.synth.cost import default_key
from repro.synth.treecost import dag_cost


class FakeClock:
    """Deterministic monotonic clock: every read advances by ``tick``
    (same shape as the budget tests', local to avoid cross-directory
    test-module imports under xdist)."""

    def __init__(self, start: float = 0.0, tick: float = 0.0) -> None:
        self.now = start
        self.tick = tick

    def __call__(self) -> float:
        self.now += self.tick
        return self.now


def _dag_key(record: RunRecord) -> tuple:
    return default_key(record.dag_delay, record.dag_area)


# -------------------------------------------------------- registry coverage
class TestNeverWorseThanGreedy:
    @pytest.mark.parametrize("design", sorted(DESIGNS))
    def test_ilp_dag_cost_at_most_greedy_on_registry(self, design):
        greedy = execute_job(
            Job(name=design, design=design, iter_limit=2, verify=False)
        )
        ilp = execute_job(
            Job(
                name=design,
                design=design,
                iter_limit=2,
                verify=False,
                extract_objective="ilp",
            )
        )
        assert greedy.status == "ok" and ilp.status == "ok", (
            greedy.error,
            ilp.error,
        )
        assert ilp.extract_objective == "ilp"
        assert greedy.extract_objective == "greedy"
        assert "ilp:" in ilp.extract_status
        assert _dag_key(ilp) <= _dag_key(greedy), design

    def test_ilp_refuses_sharded_schedules(self):
        record = execute_job(
            Job(
                name="stress_wide",
                design="stress_wide",
                iter_limit=1,
                shards=2,
                extract_objective="ilp",
            )
        )
        assert record.status == "error"
        assert "monolithic" in (record.error or "")

    def test_unknown_objective_is_rejected(self):
        record = execute_job(
            Job(name="fp_sub", design="fp_sub", extract_objective="simplex")
        )
        assert record.status == "error"
        assert "unknown extract objective" in (record.error or "")


# ------------------------------------------------------------ stage contract
def _pipeline(extract_stage, *, budget=None, clock=None):
    from repro.designs.registry import get_design

    design = get_design("lzc_example")
    stages = [
        Ingest(source=design.verilog),
        Saturate(iter_limit=3, node_limit=8_000, time_limit=10**6),
        extract_stage,
    ]
    return (
        Pipeline(stages).run(
            input_ranges=design.input_ranges, budget=budget, clock=clock
        ),
        design.output,
    )


class TestGovernedStage:
    def test_tight_deadline_keeps_greedy_incumbent_and_charges(self):
        """The window expires between the greedy phase and the refinement:
        every cone reports ``incumbent``, the trees are exactly greedy's,
        and the ledger covers the (two-phase) extract spend."""
        greedy_ctx, output = _pipeline(Extract())
        clock = FakeClock(tick=0.05)
        ctx, _ = _pipeline(
            OptimalExtract(time_limit=0.0),
            budget=Budget(time_s=10**6),
            clock=clock,
        )
        assert ctx.extracted[output] == greedy_ctx.extracted[output]
        report = ctx.extract_reports[-1]
        assert report.status == "ilp:incumbent"
        assert set(report.roots.values()) == {"incumbent"}
        row = ctx.governor.ledger["extract"]
        assert row["spent"]["time_s"] > 0
        assert ctx.artifacts["extract_objective"] == "ilp"

    def test_quota_blowup_degrades_to_greedy_with_provenance(self):
        greedy_ctx, output = _pipeline(Extract())
        ctx, _ = _pipeline(OptimalExtract(max_classes=1))
        assert ctx.extracted[output] == greedy_ctx.extracted[output]
        report = ctx.extract_reports[-1]
        assert report.status == "ilp:fallback"
        assert set(report.roots.values()) == {"fallback:quota"}

    def test_generous_window_never_worse_and_reports_solver_outcome(self):
        greedy_ctx, output = _pipeline(Extract())
        ctx, _ = _pipeline(OptimalExtract())
        report = ctx.extract_reports[-1]
        assert report.status in ("ilp:optimal", "ilp:incumbent")
        greedy_dag = dag_cost(greedy_ctx.extracted[output], greedy_ctx.input_ranges)
        ilp_dag = dag_cost(ctx.extracted[output], ctx.input_ranges)
        assert default_key(ilp_dag.delay, ilp_dag.area) <= default_key(
            greedy_dag.delay, greedy_dag.area
        )
        # Two reports: the greedy phase's and the refinement's.
        assert len(ctx.extract_reports) == 2
        assert ctx.extract_reports[0].status in ("complete", "deadline")

    def test_ungoverned_run_is_capped_by_its_own_time_limit(self):
        """No governor: the stage's ``time_limit`` still bounds refinement
        (a pipeline that asked for no budget must not stall on a proof)."""
        ctx, output = _pipeline(OptimalExtract(time_limit=0.5))
        assert ctx.governor is None
        assert output in ctx.extracted
        assert ctx.extract_reports[-1].status.startswith("ilp:")


# ------------------------------------------------------ record compatibility
class TestRunRecordCompat:
    def test_new_fields_round_trip_json(self):
        record = RunRecord(
            job="j",
            design="d",
            extract_objective="ilp",
            pareto="epsilon:optimal:4",
            dag_delay=12.5,
            dag_area=340.0,
        )
        again = RunRecord.from_json(record.to_json())
        assert again == record

    def test_legacy_rows_without_solver_fields_still_load(self):
        legacy = {
            "job": "perf:fp_sub",
            "design": "fp_sub",
            "status": "ok",
            "optimized_delay": 63.0,
            "optimized_area": 5320.0,
        }
        record = RunRecord.from_dict(legacy)
        assert record.extract_objective == ""
        assert record.pareto == ""
        assert record.dag_delay == 0.0 and record.dag_area == 0.0

    def test_ilp_record_carries_dag_costs(self):
        record = execute_job(
            Job(
                name="lzc_example",
                design="lzc_example",
                iter_limit=2,
                extract_objective="ilp",
            )
        )
        assert record.status == "ok"
        assert record.dag_delay > 0 and record.dag_area > 0
        # DAG area never exceeds tree area (sharing is priced once).
        assert record.dag_area <= record.optimized_area + 1e-9
