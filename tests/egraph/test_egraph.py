"""Core e-graph behaviour: hashcons, congruence, rebuild, analyses."""

from repro.egraph import EGraph, ENode
from repro.ir import ops, var
from repro.ir.expr import const, mux, gt


def leaf(g: EGraph, name: str, width: int = 4) -> int:
    return g.add_node(ops.VAR, (name, width))


class TestHashcons:
    def test_identical_nodes_share_class(self):
        g = EGraph()
        a = leaf(g, "a")
        n1 = g.add_node(ops.NEG, (), (a,))
        n2 = g.add_node(ops.NEG, (), (a,))
        assert n1 == n2

    def test_attrs_distinguish(self):
        g = EGraph()
        a = leaf(g, "a")
        t4 = g.add_node(ops.TRUNC, (4,), (a,))
        t5 = g.add_node(ops.TRUNC, (5,), (a,))
        assert t4 != t5

    def test_add_expr_dedups(self):
        g = EGraph()
        x = var("x", 4)
        r1 = g.add_expr(x + 1)
        r2 = g.add_expr(x + 1)
        assert r1 == r2
        assert g.class_count == 3  # x, 1, x+1


class TestUnionAndCongruence:
    def test_congruence_closure(self):
        g = EGraph()
        a, b = leaf(g, "a"), leaf(g, "b")
        fa = g.add_node(ops.NEG, (), (a,))
        fb = g.add_node(ops.NEG, (), (b,))
        g.union(a, b)
        g.rebuild()
        assert g.find(fa) == g.find(fb)

    def test_congruence_cascades(self):
        g = EGraph()
        a, b = leaf(g, "a"), leaf(g, "b")
        fa = g.add_node(ops.NEG, (), (a,))
        fb = g.add_node(ops.NEG, (), (b,))
        ffa = g.add_node(ops.ABS, (), (fa,))
        ffb = g.add_node(ops.ABS, (), (fb,))
        g.union(a, b)
        g.rebuild()
        assert g.find(ffa) == g.find(ffb)
        g.check_invariants()

    def test_union_is_idempotent(self):
        g = EGraph()
        a, b = leaf(g, "a"), leaf(g, "b")
        g.union(a, b)
        version = g.version
        g.union(a, b)
        assert g.version == version

    def test_version_bumps_on_change(self):
        g = EGraph()
        a, b = leaf(g, "a"), leaf(g, "b")
        before = g.version
        g.union(a, b)
        assert g.version == before + 1

    def test_node_and_class_counts(self):
        g = EGraph()
        a, b = leaf(g, "a"), leaf(g, "b")
        g.add_node(ops.NEG, (), (a,))
        g.add_node(ops.NEG, (), (b,))
        assert g.class_count == 4
        g.union(a, b)
        g.rebuild()
        assert g.class_count == 2  # {a,b}, {neg}
        assert g.node_count == 3   # two vars + one canonical neg

    def test_lookup(self):
        g = EGraph()
        a = leaf(g, "a")
        assert g.lookup(ENode(ops.NEG, (), (a,))) is None
        n = g.add_node(ops.NEG, (), (a,))
        assert g.lookup(ENode(ops.NEG, (), (a,))) == n


class TestAssumeCanonicalization:
    def test_constraint_tail_is_a_sorted_set(self):
        g = EGraph()
        x, c1, c2 = leaf(g, "x"), leaf(g, "c1"), leaf(g, "c2")
        a1 = g.add_node(ops.ASSUME, (), (x, c1, c2))
        a2 = g.add_node(ops.ASSUME, (), (x, c2, c1))
        a3 = g.add_node(ops.ASSUME, (), (x, c1, c2, c1))
        assert a1 == a2 == a3

    def test_constraint_merge_collapses_tail(self):
        g = EGraph()
        x, c1, c2 = leaf(g, "x"), leaf(g, "c1"), leaf(g, "c2")
        a_two = g.add_node(ops.ASSUME, (), (x, c1, c2))
        a_one = g.add_node(ops.ASSUME, (), (x, c1))
        assert a_two != a_one
        g.union(c1, c2)
        g.rebuild()
        assert g.find(a_two) == g.find(a_one)


class TestExprRoundtrip:
    def test_add_expr_and_extract_any(self):
        g = EGraph()
        x = var("x", 4)
        e = mux(gt(x, 2), x + 1, const(0))
        root = g.add_expr(e)
        back = g.any_expr(root)
        assert back == e  # nothing merged yet: same tree comes back

    def test_invariants_after_stress(self):
        g = EGraph()
        x, y = var("x", 4), var("y", 4)
        r1 = g.add_expr((x + y) + 1)
        r2 = g.add_expr((y + x) + 1)
        g.union(g.add_expr(x + y), g.add_expr(y + x))
        g.rebuild()
        assert g.find(r1) == g.find(r2)
        g.check_invariants()
