"""E-nodes: operator + attributes + child e-class ids.

An e-node is the e-graph analogue of one :class:`~repro.ir.expr.Expr` level:
children are e-class ids instead of subtrees.  E-nodes are hashable and are
the keys of the e-graph's hashcons.

``ASSUME`` e-nodes canonicalize their constraint tail as a *sorted set* of
e-class ids, which makes the constraint argument of the paper's ``ASSUME``
order-insensitive and duplicate-free by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir import ops
from repro.ir.ops import Op


@dataclass(frozen=True, slots=True)
class ENode:
    """One operator application over e-class ids."""

    op: Op
    attrs: tuple = ()
    children: tuple[int, ...] = ()

    def canonical(self, find) -> "ENode":
        """Rewrite child ids through ``find`` (a callable id -> root id)."""
        if not self.children:
            return self
        if self.op is ops.ASSUME:
            head = find(self.children[0])
            tail = tuple(sorted({find(c) for c in self.children[1:]}))
            return ENode(self.op, self.attrs, (head,) + tail)
        return ENode(self.op, self.attrs, tuple(find(c) for c in self.children))

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def __repr__(self) -> str:
        if self.op is ops.VAR:
            return f"Var({self.attrs[0]}:{self.attrs[1]})"
        if self.op is ops.CONST:
            return f"Const({self.attrs[0]})"
        attrs = f"<{','.join(map(str, self.attrs))}>" if self.attrs else ""
        kids = ",".join(f"c{c}" for c in self.children)
        return f"{self.op.name}{attrs}({kids})"
