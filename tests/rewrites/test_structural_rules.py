"""Behavioural tests for the arithmetic / mux / shift / range rule groups:
each key rule demonstrably enables the expected optimization."""

from repro.analysis import DatapathAnalysis, range_of
from repro.egraph import AstSizeCost, EGraph, Extractor, Runner
from repro.intervals import IntervalSet
from repro.ir import abs_, gt, lt, lzc, mux, ops, trunc, var
from repro.rewrites.arith import arith_rules
from repro.rewrites.mux import mux_cond_const_rule, mux_pull_rule, mux_rules
from repro.rewrites.range_rules import range_rules
from repro.rewrites.shift import shift_rules
from repro.synth import DelayAreaCost
from repro.pipeline.budget import Budget


def optimize(expr, rules, input_ranges=None, iters=6, cost=None):
    g = EGraph([DatapathAnalysis(dict(input_ranges or {}))])
    root = g.add_expr(expr)
    g.rebuild()
    Runner(g, rules, budget=Budget(iters=iters, nodes=6000)).run()
    extractor = Extractor(g, cost if cost else AstSizeCost())
    return extractor.expr_of(root), g, root


X = var("x", 8)
Y = var("y", 8)


class TestArith:
    def test_identity_chain_collapses(self):
        best, _, _ = optimize(((X + 0) * 1 - 0), arith_rules())
        assert best == X

    def test_sub_self_needs_total(self):
        best, _, _ = optimize(X - X, arith_rules())
        assert best.is_const and best.value == 0

    def test_add_sub_cancellation(self):
        best, _, _ = optimize((X + Y) - Y, arith_rules())
        assert best == X

    def test_mul_pow2_strength_reduction(self):
        best, _, _ = optimize(X * 8, arith_rules(), cost=DelayAreaCost())
        assert best.op is ops.SHL

    def test_abs_mux_interchange(self):
        best, g, root = optimize(mux(lt(X - Y, 0), -(X - Y), X - Y), arith_rules())
        assert any(
            n.op is ops.ABS for c in g.classes() for n in c.nodes
        ), "mux-as-abs should have added an ABS form"


class TestMux:
    def test_same_branches_collapse(self):
        best, _, _ = optimize(mux(gt(X, Y), X + 1, X + 1), mux_rules())
        assert best == X + 1

    def test_const_condition(self):
        best, _, _ = optimize(
            mux(gt(X, 300), Y, X), [mux_cond_const_rule()]
        )
        assert best == X

    def test_mux_pull_moves_mux_to_output(self):
        design = (mux(gt(X, Y), X, Y)) + 1
        _, g, root = optimize(design, [mux_pull_rule()])
        # The root class must now contain a MUX node (pulled through +).
        assert any(n.op is ops.MUX for n in g[root].nodes)

    def test_and_split_eq6(self):
        from repro.ir.expr import Expr

        boolean_and = Expr(ops.AND, (), (gt(X, 3), lt(X, 9)))
        design = mux(boolean_and, X, Y)
        _, g, root = optimize(design, mux_rules())
        # eq. (6) fired: a nested mux form exists in the root class.
        nested = [
            n for n in g[root].nodes
            if n.op is ops.MUX
            and any(m.op is ops.MUX for m in g[g.find(n.children[1])].nodes)
        ]
        assert nested


class TestShift:
    def test_shl_shr_cancel(self):
        best, _, _ = optimize((X << 3) >> 3, shift_rules())
        assert best == X

    def test_shift_combine(self):
        best, _, _ = optimize(((X << 2) << 3), shift_rules(), cost=DelayAreaCost())
        shifts = [n for n in best.walk() if n.op is ops.SHL]
        assert len(shifts) == 1
        assert any(n.is_const and n.value == 5 for n in best.walk())

    def test_shr_shl_floor_identities(self):
        best, _, _ = optimize((X << 5) >> 2, shift_rules(), cost=DelayAreaCost())
        # (x<<5)>>2 == x<<3
        assert any(n.is_const and n.value == 3 for n in best.walk())

    def test_trunc_of_trunc(self):
        best, _, _ = optimize(
            trunc(trunc(X, 6), 4), shift_rules(), cost=DelayAreaCost()
        )
        truncs = [n for n in best.walk() if n.op is ops.TRUNC]
        assert len(truncs) == 1 and truncs[0].attrs == (4,)


class TestRangeRules:
    def test_abs_identity(self):
        best, _, _ = optimize(abs_(X), range_rules())
        assert best == X  # x is unsigned, abs is a wire

    def test_abs_negate(self):
        zero_minus = 0 - X
        best, _, _ = optimize(abs_(zero_minus), range_rules() + arith_rules())
        assert not any(n.op is ops.ABS for n in best.walk())

    def test_trunc_elim_by_range(self):
        best, _, _ = optimize(trunc(X + 0, 9), range_rules() + arith_rules())
        assert best == X

    def test_lzc_narrow_by_min(self):
        best, _, _ = optimize(
            lzc(X, 8), range_rules(),
            input_ranges={"x": IntervalSet.of(64, 255)},
            cost=DelayAreaCost(),
        )
        widths = [n.attrs[0] for n in best.walk() if n.op is ops.LZC]
        assert widths and min(widths) <= 2

    def test_lzc_width_reduce_by_max(self):
        """``LZC_8(x) -> 4 + LZC_4(x)`` when x <= 15: the narrow form must
        appear in the e-graph (whether extraction picks it is a cost-model
        choice — the constant offset costs an adder)."""
        _, g, root = optimize(
            lzc(X, 8), range_rules(),
            input_ranges={"x": IntervalSet.of(0, 15)},
        )
        narrow = [
            n
            for n in {node for c in g.classes() for node in c.nodes}
            if n.op is ops.LZC and n.attrs == (4,)
        ]
        assert narrow, "lzc-width-reduce did not add the 4-bit LZC form"
        assert range_of(g, root) == IntervalSet.of(4, 8)

    def test_minmax_resolution(self):
        from repro.ir import min_

        best, _, _ = optimize(
            min_(trunc(X, 4), Y + 16), range_rules() + arith_rules()
        )
        # trunc(x,4) <= 15 < 16 <= y+16 always: min resolves to the left.
        assert not any(n.op is ops.MIN for n in best.walk())
