"""The interval + totality e-class analysis."""

from repro.analysis import DatapathAnalysis, range_of, total_of, width_of
from repro.egraph import EGraph
from repro.intervals import IntervalSet
from repro.ir import ops, var
from repro.ir.expr import assume, bitnot, const, eq, gt, lnot, lt, lzc, mux, ne, trunc


def graph(**input_ranges) -> EGraph:
    ranges = {k: v for k, v in input_ranges.items()}
    return EGraph([DatapathAnalysis(ranges)])


class TestBaseAbstraction:
    def test_var_seeded_with_declared_range(self):
        g = graph()
        x = g.add_expr(var("x", 8))
        assert range_of(g, x) == IntervalSet.of(0, 255)
        assert total_of(g, x)

    def test_var_with_input_constraint(self):
        g = graph(x=IntervalSet.of(128, 255))
        x = g.add_expr(var("x", 8))
        assert range_of(g, x) == IntervalSet.of(128, 255)

    def test_const(self):
        g = graph()
        c = g.add_expr(const(-7))
        assert range_of(g, c).as_point() == -7

    def test_arith_transfer(self):
        g = graph()
        s = g.add_expr(var("x", 8) + var("y", 8))
        assert range_of(g, s) == IntervalSet.of(0, 510)
        d = g.add_expr(var("x", 8) - var("y", 8))
        assert range_of(g, d) == IntervalSet.of(-255, 255)

    def test_mux_union(self):
        g = graph()
        x = var("x", 8)
        m = g.add_expr(mux(gt(x, 10), const(100), const(200)))
        assert range_of(g, m) == IntervalSet.from_values([100, 200])

    def test_widths(self):
        g = graph()
        s = g.add_expr(var("x", 8) + var("y", 8))
        assert width_of(g, s) == 9
        d = g.add_expr(var("x", 8) - var("y", 8))
        assert width_of(g, d) == 9  # two's complement for [-255, 255]


class TestJoinIsIntersection:
    def test_merging_tightens(self):
        g = graph()
        x = g.add_expr(var("x", 8))
        y = g.add_expr(var("y", 4))
        # Pretend x == y (externally justified): ranges intersect.
        g.union(x, y)
        g.rebuild()
        assert range_of(g, x) == IntervalSet.of(0, 15)

    def test_parent_recomputed_after_tighten(self):
        g = graph()
        x = g.add_expr(var("x", 8))
        parent = g.add_expr(var("x", 8) + 1)
        g.union(x, g.add_expr(var("y", 2)))
        g.rebuild()
        assert range_of(g, parent) == IntervalSet.of(1, 4)


class TestSetData:
    def test_seeding_constant_range_materializes_const(self):
        """set_data must re-run modify on the class itself: seeding a range
        that proves the class constant materializes the CONST node."""
        from repro.analysis import AbsVal
        from repro.analysis.datapath import ANALYSIS_NAME

        g = graph()
        x = g.add_expr(var("x", 8))
        assert g.class_const(x) is None
        g.set_data(x, ANALYSIS_NAME, AbsVal(IntervalSet.point(7), True))
        g.rebuild()
        assert g.class_const(x) == 7

    def test_seeded_range_propagates_to_parents(self):
        from repro.analysis import AbsVal
        from repro.analysis.datapath import ANALYSIS_NAME

        g = graph()
        x = g.add_expr(var("x", 8))
        parent = g.add_expr(var("x", 8) + 1)
        g.set_data(x, ANALYSIS_NAME, AbsVal(IntervalSet.point(9), True))
        g.rebuild()
        assert g.class_const(parent) == 10
        g.check_invariants()


class TestConstantFolding:
    def test_total_singleton_folds_to_const(self):
        g = graph()
        s = g.add_expr(const(2) + const(3))
        g.rebuild()
        assert g.class_const(s) == 5

    def test_comparison_folds(self):
        g = graph()
        c = g.add_expr(gt(const(7), const(3)))
        g.rebuild()
        assert g.class_const(c) == 1

    def test_range_driven_fold(self):
        g = graph(x=IntervalSet.point(9))
        s = g.add_expr(var("x", 8) + 1)
        g.rebuild()
        assert g.class_const(s) == 10

    def test_partial_class_does_not_fold_to_bare_const(self):
        """ASSUME(x, x==5) folds to ASSUME(5, ...), never to bare 5."""
        g = graph()
        x = var("x", 8)
        a = g.add_expr(assume(x, eq(x, 5)))
        g.rebuild()
        assert range_of(g, a).as_point() == 5
        assert not total_of(g, a)
        # the class must NOT contain a plain const node...
        assert g.class_const(a) is None
        # ...but must contain the folded ASSUME(5, x==5).
        folded = [
            n for n in g[a].nodes
            if n.op is ops.ASSUME and g.class_const(n.children[0]) == 5
        ]
        assert folded


class TestAssumeRefinement:
    def test_gt_constraint(self):
        g = graph()
        x = var("x", 8)
        a = g.add_expr(assume(x, gt(x, 10)))
        assert range_of(g, a) == IntervalSet.of(11, 255)
        assert not total_of(g, a)

    def test_lt_constraint(self):
        g = graph()
        x = var("x", 8)
        a = g.add_expr(assume(x, lt(x, 10)))
        assert range_of(g, a) == IntervalSet.of(0, 9)

    def test_eq_and_ne(self):
        g = graph()
        x = var("x", 8)
        assert range_of(g, g.add_expr(assume(x, eq(x, 7)))).as_point() == 7
        a = g.add_expr(assume(x, ne(x, 0)))
        assert range_of(g, a) == IntervalSet.of(1, 255)

    def test_lnot_constraint_pins_zero(self):
        g = graph()
        x = var("x", 8)
        a = g.add_expr(assume(x, lnot(x)))
        assert range_of(g, a).as_point() == 0

    def test_self_constraint_removes_zero(self):
        g = graph()
        x = var("x", 8)
        a = g.add_expr(assume(x, x))
        assert range_of(g, a) == IntervalSet.of(1, 255)

    def test_multiple_constraints_intersect(self):
        g = graph()
        x = var("x", 8)
        a = g.add_expr(assume(x, gt(x, 10), lt(x, 20)))
        assert range_of(g, a) == IntervalSet.of(11, 19)

    def test_infeasible_constraint_empties(self):
        g = graph()
        x = var("x", 8)
        a = g.add_expr(assume(x, gt(x, 300)))
        g.rebuild()
        assert range_of(g, a).is_empty

    def test_constraint_through_merge(self):
        """Condition rewriting: merging a Constr form into the constraint
        class refines the ASSUME (Section IV-C's a-b>0 example)."""
        g = graph()
        a_var, b_var = var("a", 8), var("b", 8)
        diff = a_var - b_var
        opaque = gt(a_var, b_var)          # not a Constr about diff
        wrapped = g.add_expr(assume(diff, opaque))
        before = range_of(g, wrapped)
        assert before.min() == -255
        # Table II: a > b  ->  a - b > 0 merges into the constraint class.
        g.union(g.add_expr(opaque), g.add_expr(gt(diff, 0)))
        g.rebuild()
        assert range_of(g, wrapped) == IntervalSet.of(1, 255)

    def test_paper_expdiff_example(self):
        """Eqs. (8)/(9): ASSUME(ExpDiff, ExpDiff > 1) and its negation."""
        g = graph()
        ed = var("ExpDiff", 5)
        far = g.add_expr(assume(ed, gt(ed, 1)))
        assert range_of(g, far) == IntervalSet.of(2, 31)
        # ~(ExpDiff > 1) needs two condition rewrites; emulate their effect
        # by merging the Constr form ExpDiff < 2 into the constraint class.
        neg = lnot(gt(ed, 1))
        near = g.add_expr(assume(ed, neg))
        g.union(g.add_expr(neg), g.add_expr(lt(ed, 2)))
        g.rebuild()
        assert range_of(g, near) == IntervalSet.of(0, 1)


class TestTotalityGates:
    def test_bitwise_on_possibly_negative_is_partial(self):
        g = graph()
        e = g.add_expr((var("x", 4) - var("y", 4)) & var("z", 4))
        assert not total_of(g, e)

    def test_lzc_out_of_range_is_partial(self):
        g = graph()
        e = g.add_expr(lzc(var("x", 8) + var("y", 8), 8))  # 9 bits needed
        assert not total_of(g, e)

    def test_lzc_in_range_is_total(self):
        g = graph()
        e = g.add_expr(lzc(var("x", 8) + var("y", 8), 9))
        assert total_of(g, e)

    def test_trunc_always_total(self):
        g = graph()
        e = g.add_expr(trunc(var("x", 4) - var("y", 4), 4))
        assert total_of(g, e)

    def test_mux_with_total_selected_branch(self):
        g = graph()
        x = var("x", 8)
        guarded = mux(gt(x, 2), assume(x, gt(x, 2)), const(0))
        m = g.add_expr(guarded)
        # Conservative make(): branch assume is partial, so the mux is not
        # *proved* total by make alone (the class may still become total
        # via a union with a total member).
        assert not total_of(g, m)

    def test_bitnot_width_ok(self):
        g = graph()
        e = g.add_expr(bitnot(var("x", 8), 8))
        assert total_of(g, e)
        assert range_of(g, e) == IntervalSet.of(0, 255)
