"""Delay-target synthesis sweep (the Figure 3 / Table III measurement flow).

The paper synthesizes each RTL "at a range of delay targets using Synopsys
Fusion Compiler" and reports the resulting area-delay curve (Fig. 3) and the
minimum achievable delay point (Table III).  The substitute flow:

* every adder-based operator instance starts as the smallest architecture
  (ripple);
* while the netlist misses the delay target, the slowest instance on the
  critical path is upgraded (ripple -> carry-select -> sklansky);
* the process stops at the target or when nothing upgradeable remains.

Sweeping the target from tight to loose produces the same qualitatively
convex area-delay trade-off a commercial tool emits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.intervals import IntervalSet
from repro.ir.expr import Expr
from repro.synth.components import ADDER_ARCHS
from repro.synth.lower import lower_to_netlist


@dataclass
class SynthesisPoint:
    """One synthesis run: requested target, achieved delay, area."""

    target: float
    delay: float
    area: float
    met: bool
    arch_choices: dict[str, str] = field(default_factory=dict)


def synthesize_at(
    expr: Expr,
    target: float,
    input_ranges: Mapping[str, IntervalSet] | None = None,
    max_upgrades: int = 200,
) -> SynthesisPoint:
    """Minimum-area netlist meeting ``target`` (best effort)."""
    choices: dict[str, str] = {}
    lowered = lower_to_netlist(expr, input_ranges, choices, default_arch="ripple")
    delay = lowered.netlist.critical_path_delay()
    for _ in range(max_upgrades):
        if delay <= target:
            break
        upgraded = False
        for tag in lowered.netlist.critical_tags():
            if tag not in lowered.adder_tags:
                continue
            current = choices.get(tag, "ripple")
            position = ADDER_ARCHS.index(current)
            if position + 1 < len(ADDER_ARCHS):
                choices[tag] = ADDER_ARCHS[position + 1]
                upgraded = True
                break
        if not upgraded:
            break
        lowered = lower_to_netlist(expr, input_ranges, choices, default_arch="ripple")
        delay = lowered.netlist.critical_path_delay()
    return SynthesisPoint(
        target=target,
        delay=delay,
        area=lowered.netlist.area(),
        met=delay <= target,
        arch_choices=dict(choices),
    )


def min_delay_point(
    expr: Expr, input_ranges: Mapping[str, IntervalSet] | None = None
) -> SynthesisPoint:
    """The fastest achievable implementation (Table III's operating point).

    All-fastest architectures give the delay floor; the floor is then passed
    back through :func:`synthesize_at` so area relaxes wherever there is
    slack.
    """
    fastest = lower_to_netlist(expr, input_ranges, {}, default_arch="sklansky")
    floor = fastest.netlist.critical_path_delay()
    point = synthesize_at(expr, floor, input_ranges)
    if not point.met:
        return SynthesisPoint(
            target=floor,
            delay=floor,
            area=fastest.netlist.area(),
            met=True,
            arch_choices={tag: "sklansky" for tag in fastest.adder_tags},
        )
    return point


def area_delay_sweep(
    expr: Expr,
    input_ranges: Mapping[str, IntervalSet] | None = None,
    points: int = 10,
    slack_factor: float = 2.5,
) -> list[SynthesisPoint]:
    """Synthesize across delay targets from the floor to ``slack_factor``x.

    Returns one :class:`SynthesisPoint` per target — the Figure 3 series.

    Since the Pareto subsystem landed this is a thin wrapper over
    :func:`repro.solve.pareto.sweep_points` (imported lazily — ``solve``
    sits above ``synth`` in the package DAG).  The engine replays the same
    greedy critical-path upgrader through a memoized architecture space, so
    the series keeps the legacy guarantees — same target grid, ``met``
    honesty, prefix-min area-monotonicity (a looser target may always reuse
    a tighter target's implementation, so no point is larger than an
    earlier one; the historical non-monotone Figure 3 point) — and may only
    *improve*: when the shared space knows a cheaper configuration meeting
    a target (exhaustive enumeration on small designs, cross-target
    memoization on large ones), it is substituted in.  For the front itself
    — per-point provenance, dominance filtering, weighted mode — use
    :func:`repro.solve.pareto.pareto_front` directly.
    """
    from repro.solve.pareto import sweep_points  # lint: ok(AR-LAYER): back-compat wrapper; the sweep implementation moved up into solve and this shim forwards to it

    return sweep_points(
        expr, input_ranges, points=points, slack_factor=slack_factor
    )
