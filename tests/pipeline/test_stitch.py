"""Cross-cone stitch phase: re-uniting shard e-graphs closes the sharing gap.

Shared-nothing sharding gives up cross-cone equivalences; the governed
``Stitch`` step inside ``MergeShards`` absorbs each shard's shipped graph
into one e-graph, re-unions shared subexpressions, runs a short budgeted
saturation, and re-extracts.  Contract:

* **never worse** — keep-min against the plain merge guarantees a stitched
  output never costs more than the plain ``MergeShards`` result;
* **pays off where sharding lost sharing** — ``stress_wide``'s eight lanes
  share subexpressions that per-cone shards cannot see; the stitch recovers
  them (strictly better than plain merge, never worse than monolithic);
* **still sound** — every stitched output stays equivalent to its source
  cone (BDD-proved where the miter is provable);
* **ledger-honest** — stitch work shows up as its own governed rows, not as
  an unledgered overshoot inside ``merge-shards``.
"""

from __future__ import annotations

import pytest

from repro.designs import DESIGNS, get_design
from repro.pipeline import (
    Budget,
    Extract,
    Ingest,
    MergeShards,
    Pipeline,
    Saturate,
    Shard,
    ShardSchedule,
)
from repro.rewrites import compose_rules
from repro.rtl import module_to_ir
from repro.verify import check_equivalent

ITERS = 3
NODE_LIMIT = 8_000

BDD_PROVABLE = sorted(set(DESIGNS) - {"fp_sub", "interpolation"})


def _sharded(design, stitch, budget=None, ship=None):
    ship_egraph = stitch if ship is None else ship
    return Pipeline(
        [
            Ingest(source=design.verilog),
            Shard(
                ShardSchedule(
                    iter_limit=ITERS,
                    node_limit=NODE_LIMIT,
                    budget=budget,
                    ship_egraph=ship_egraph,
                )
            ),
            MergeShards(
                stitch=stitch,
                stitch_rules=compose_rules() if stitch else None,
            ),
        ]
    ).run(input_ranges=design.input_ranges)


@pytest.mark.parametrize("name", sorted(DESIGNS))
class TestStitchParity:
    def test_stitch_never_costlier_than_plain_merge(self, name):
        design = get_design(name)
        plain = _sharded(design, stitch=False)
        stitched = _sharded(design, stitch=True)
        assert stitched.artifacts["stitch_status"].startswith("stitched:")
        assert set(stitched.extracted) == set(plain.extracted)
        for output in plain.roots:
            assert (
                stitched.optimized_costs[output].key
                <= plain.optimized_costs[output].key
            ), f"stitch made {name}:{output} worse"

    def test_stitched_outputs_equivalent_to_original_cones(self, name):
        design = get_design(name)
        stitched = _sharded(design, stitch=True)
        cones = module_to_ir(design.verilog)
        for output, optimized in stitched.extracted.items():
            verdict = check_equivalent(
                cones[output], optimized, design.input_ranges
            )
            assert verdict.ok, (
                f"{name}:{output} differs at {verdict.counterexample}"
            )
            if name in BDD_PROVABLE:
                assert verdict.equivalent is True
                assert verdict.method in ("bdd", "exhaustive")


class TestStressWideGapClosure:
    """``stress_wide`` is the design that *needs* the stitch: its lanes
    share subexpressions across output cones, which shared-nothing shards
    cannot exploit."""

    def test_stitch_strictly_improves_at_least_one_lane(self):
        design = get_design("stress_wide")
        plain = _sharded(design, stitch=False)
        stitched = _sharded(design, stitch=True)
        improved = [
            output
            for output in plain.roots
            if stitched.optimized_costs[output].key
            < plain.optimized_costs[output].key
        ]
        assert improved, "stitch recovered no cross-cone sharing"

    def test_stitch_closes_the_gap_to_monolithic(self):
        design = get_design("stress_wide")
        mono = Pipeline(
            [
                Ingest(source=design.verilog),
                Saturate(
                    compose_rules(), iter_limit=ITERS, node_limit=NODE_LIMIT
                ),
                Extract(),
            ]
        ).run(input_ranges=design.input_ranges)
        stitched = _sharded(design, stitch=True)
        for output in mono.roots:
            assert (
                stitched.optimized_costs[output].key
                <= mono.optimized_costs[output].key
            ), f"stitched {output} still behind the monolithic run"


class TestStitchPlumbing:
    def test_without_shipped_graphs_the_stitch_skips(self):
        design = get_design("stress_wide")
        # stitch requested but shards not asked to ship their graphs.
        result = _sharded(design, stitch=True, ship=False)
        assert result.artifacts["stitch_status"] == "skipped:no-graphs"

    def test_shards_only_ship_graphs_when_asked(self):
        design = get_design("lzc_example")
        plain = _sharded(design, stitch=False)
        assert all(r.egraph is None for r in plain.shard_results)
        stitched = _sharded(design, stitch=True)
        assert all(r.egraph is not None for r in stitched.shard_results)
        assert all(r.root_ids for r in stitched.shard_results)

    def test_governed_stitch_charges_its_own_ledger_rows(self):
        design = get_design("stress_wide")
        governed = _sharded(design, stitch=True, budget=Budget(time_s=120.0))
        assert governed.governor is not None
        ledger = set(governed.governor.ledger)
        shard_rows = {f"shard:{r.name}" for r in governed.shard_results}
        assert ledger >= shard_rows
        assert "merge-shards" in ledger
        # Stitch work is ledgered under its own stage names; nothing else
        # leaks in.
        assert ledger - shard_rows <= {
            "merge-shards",
            "stitch",
            "stitch-extract",
        }
        # And the governed result honours the same keep-min contract.
        plain = _sharded(design, stitch=False)
        for output in plain.roots:
            assert (
                governed.optimized_costs[output].key
                <= plain.optimized_costs[output].key
            )
