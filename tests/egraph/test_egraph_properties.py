"""Property-based e-graph invariants under random union/add workloads."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.egraph import EGraph
from repro.ir import ops


@st.composite
def workload(draw):
    """A random sequence of add/union operations over small signatures."""
    n_leaves = draw(st.integers(2, 5))
    steps = draw(
        st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 999), st.integers(0, 999)),
            min_size=1,
            max_size=40,
        )
    )
    return n_leaves, steps


@settings(max_examples=60, deadline=None)
@given(workload())
def test_invariants_hold_under_random_workloads(load):
    n_leaves, steps = load
    g = EGraph()
    ids = [g.add_node(ops.VAR, (f"v{i}", 4)) for i in range(n_leaves)]
    unary = [ops.NEG, ops.ABS, ops.LNOT]
    for kind, x, y in steps:
        a = ids[x % len(ids)]
        b = ids[y % len(ids)]
        if kind == 0:
            ids.append(g.add_node(unary[x % 3], (), (g.find(a),)))
        elif kind == 1:
            ids.append(g.add_node(ops.ADD, (), (g.find(a), g.find(b))))
        else:
            g.union(a, b)
    g.rebuild()
    g.check_invariants()


@settings(max_examples=40, deadline=None)
@given(workload())
def test_congruence_is_maintained(load):
    """After rebuild: equal children => nodes in the same class."""
    n_leaves, steps = load
    g = EGraph()
    ids = [g.add_node(ops.VAR, (f"v{i}", 4)) for i in range(n_leaves)]
    for kind, x, y in steps:
        a, b = ids[x % len(ids)], ids[y % len(ids)]
        if kind == 0:
            ids.append(g.add_node(ops.NEG, (), (g.find(a),)))
        elif kind == 1:
            ids.append(g.add_node(ops.ADD, (), (g.find(a), g.find(b))))
        else:
            g.union(a, b)
    g.rebuild()
    seen = {}
    for eclass in g.classes():
        for node in eclass.nodes:
            canon = node.canonical(g.find)
            assert seen.setdefault(canon, eclass.id) == eclass.id


def _naive_node_count(g: EGraph) -> int:
    return sum(len(c.nodes) for c in g.classes())


def _naive_nodes_by_op(g: EGraph) -> dict:
    """The old full-rescan index, as {(op, node) -> canonical class}."""
    index = {}
    for eclass in g.classes():
        for node in eclass.nodes:
            index[(node.op, node)] = eclass.id
    return index


@settings(max_examples=60, deadline=None)
@given(workload())
def test_incremental_counters_match_full_recomputation(load):
    """node_count/class_count counters == O(classes) sweeps after every
    rebuild of a randomized add/union sequence."""
    n_leaves, steps = load
    g = EGraph()
    ids = [g.add_node(ops.VAR, (f"v{i}", 4)) for i in range(n_leaves)]
    unary = [ops.NEG, ops.ABS, ops.LNOT]
    for kind, x, y in steps:
        a, b = ids[x % len(ids)], ids[y % len(ids)]
        if kind == 0:
            ids.append(g.add_node(unary[x % 3], (), (g.find(a),)))
        elif kind == 1:
            ids.append(g.add_node(ops.ADD, (), (g.find(a), g.find(b))))
        else:
            g.union(a, b)
            g.rebuild()
            assert g.node_count == _naive_node_count(g)
        assert g.node_count == _naive_node_count(g)
    g.rebuild()
    assert g.node_count == _naive_node_count(g)
    assert g.class_count == len(list(g.classes()))


@settings(max_examples=60, deadline=None)
@given(workload())
def test_persistent_op_index_matches_full_rescan(load):
    """The persistent per-op index agrees with the old full rescan (and
    holds only canonical entries) after rebuild."""
    n_leaves, steps = load
    g = EGraph()
    ids = [g.add_node(ops.VAR, (f"v{i}", 4)) for i in range(n_leaves)]
    for kind, x, y in steps:
        a, b = ids[x % len(ids)], ids[y % len(ids)]
        if kind == 0:
            ids.append(g.add_node(ops.NEG, (), (g.find(a),)))
        elif kind == 1:
            ids.append(g.add_node(ops.ADD, (), (g.find(a), g.find(b))))
        else:
            g.union(a, b)
    g.rebuild()
    indexed = {
        (op, node): g.find(cid)
        for op, entries in g.nodes_by_op().items()
        for cid, node in entries
    }
    assert indexed == _naive_nodes_by_op(g)
    g.check_invariants()  # cross-checks index/hashcons/counters too


@settings(max_examples=60, deadline=None)
@given(workload())
def test_parent_sets_resolve_after_rebuild(load):
    """Dict-keyed parent sets: each entry's canonical parent node is owned by
    the class its recorded id resolves to, and references the child class."""
    n_leaves, steps = load
    g = EGraph()
    ids = [g.add_node(ops.VAR, (f"v{i}", 4)) for i in range(n_leaves)]
    for kind, x, y in steps:
        a, b = ids[x % len(ids)], ids[y % len(ids)]
        if kind == 0:
            ids.append(g.add_node(ops.NEG, (), (g.find(a),)))
        elif kind == 1:
            ids.append(g.add_node(ops.ADD, (), (g.find(a), g.find(b))))
        else:
            g.union(a, b)
    g.rebuild()
    for eclass in g.classes():
        assert isinstance(eclass.parents, dict)
        for penode, pid in eclass.parents.items():
            canon = penode.canonical(g.find)
            owner = g.lookup(canon)
            assert owner is not None and owner == g.find(pid)
            assert eclass.id in {g.find(c) for c in canon.children}
    g.check_invariants()  # includes the same checks graph-wide


def test_rebuild_is_idempotent():
    g = EGraph()
    a = g.add_node(ops.VAR, ("a", 4))
    b = g.add_node(ops.VAR, ("b", 4))
    fa = g.add_node(ops.NEG, (), (a,))
    fb = g.add_node(ops.NEG, (), (b,))
    g.union(a, b)
    first = g.rebuild()
    assert first >= 1
    assert g.rebuild() == 0
    assert g.find(fa) == g.find(fb)


def test_union_transcript_independent_of_order():
    """The final partition does not depend on union order."""
    rng = random.Random(9)
    pairs = [(rng.randrange(8), rng.randrange(8)) for _ in range(12)]

    def build(order):
        g = EGraph()
        ids = [g.add_node(ops.VAR, (f"v{i}", 4)) for i in range(8)]
        fs = [g.add_node(ops.NEG, (), (i,)) for i in ids]
        for a, b in order:
            g.union(ids[a], ids[b])
        g.rebuild()
        partition = []
        for i in range(8):
            row = tuple(
                int(g.find(fs[i]) == g.find(fs[j])) for j in range(8)
            )
            partition.append(row)
        return partition

    forward = build(pairs)
    backward = build(list(reversed(pairs)))
    assert forward == backward
