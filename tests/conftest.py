"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import random

import pytest

from repro.intervals import IntervalSet


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


@pytest.fixture(autouse=True, scope="session")
def _global_registries_stay_immutable():
    """Parallel-safety guard (the tier-1 job runs under pytest-xdist).

    Every xdist worker imports its own copy of the package, so tests only
    stay order- and worker-independent if nothing mutates the module-level
    registries.  A test that monkeys with ``DESIGNS`` or ``RULESETS`` in
    place would pass serially and corrupt unrelated tests in parallel —
    this fixture turns that into a loud session-teardown failure.
    """
    from repro.designs import DESIGNS
    from repro.rewrites.rulesets import RULESETS

    designs_before = {name: id(design) for name, design in DESIGNS.items()}
    rulesets_before = {name: id(entry) for name, entry in RULESETS.items()}
    yield
    assert {n: id(d) for n, d in DESIGNS.items()} == designs_before, (
        "a test mutated the designs registry in place (parallel-unsafe)"
    )
    assert {n: id(e) for n, e in RULESETS.items()} == rulesets_before, (
        "a test mutated the rulesets registry in place (parallel-unsafe)"
    )


def random_iset(rng: random.Random, lo: int = -64, hi: int = 64) -> IntervalSet:
    """A random small interval set (possibly with several pieces)."""
    pieces = []
    for _ in range(rng.randint(1, 3)):
        a = rng.randint(lo, hi)
        b = rng.randint(lo, hi)
        if a > b:
            a, b = b, a
        pieces.append((a, b))
    out = IntervalSet.empty()
    for a, b in pieces:
        out = out.union(IntervalSet.of(a, b))
    return out


def sample(iset: IntervalSet, rng: random.Random) -> int:
    """A random member of a bounded, non-empty set."""
    parts = iset.parts
    piece = parts[rng.randrange(len(parts))]
    return rng.randint(piece.lo, piece.hi)
