"""Persistent e-graph artifacts: a versioned save/load format + graph import.

A saturated e-graph is expensive to build and cheap to reuse, so it becomes a
first-class artifact with two consumers:

* **warm starts** — a later run re-interns its (possibly edited) design roots
  into the persisted graph and saturates only the delta (the persisted
  equivalences are already there, so unchanged cones re-saturate in one
  no-op iteration);
* **cross-cone stitching** — per-output shard graphs are absorbed into one
  graph (:func:`absorb_graph`), re-uniting the inter-output sharing that
  shared-nothing cones gave up.

File format (version 1): one JSON header line, then a pickle payload.

The header is plain text on purpose — ``read_header`` can answer "is this
artifact compatible?" (format version, canonical design digest, schedule
key) without unpickling a multi-megabyte graph.  The payload is the compact
:meth:`CoreGraph.__reduce__` pickle of ``(egraph, root_ids, input_ranges)``;
unpickling derives the hashcons and indices, exactly as process-pool shard
shipping already does.  Writes are atomic (tempfile + ``os.replace``), so a
crash mid-save never corrupts a previously good artifact.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.egraph.core import CoreGraph
from repro.egraph.egraph import EGraph

__all__ = [
    "FORMAT_VERSION",
    "EGraphFormatError",
    "EGraphHeader",
    "SavedEGraph",
    "absorb_graph",
    "load_egraph",
    "read_header",
    "save_egraph",
]

#: First line of every artifact, before the JSON header is even parsed.
MAGIC = "repro-egraph"

#: Bumped whenever the payload layout changes; ``load_egraph`` refuses
#: artifacts from other versions (a stale artifact is a cold start, never
#: a crash).
FORMAT_VERSION = 1


class EGraphFormatError(ValueError):
    """Raised when an artifact is missing, corrupt, or incompatible.

    ``reason`` is a short machine-readable code ("io", "header", "magic",
    "version", "digest", "schedule", "payload") — warm-start fallbacks
    record it so a cold start is attributable from the run record.
    """

    def __init__(self, message: str, reason: str = "format") -> None:
        super().__init__(message)
        self.reason = reason


@dataclass(frozen=True)
class EGraphHeader:
    """The cheap-to-read first line of an artifact."""

    format: int
    digest: str
    schedule: str
    nodes: int
    classes: int
    roots: tuple[str, ...]

    def as_dict(self) -> dict[str, Any]:
        return {
            "magic": MAGIC,
            "format": self.format,
            "digest": self.digest,
            "schedule": self.schedule,
            "nodes": self.nodes,
            "classes": self.classes,
            "roots": list(self.roots),
        }


@dataclass
class SavedEGraph:
    """A loaded artifact: the revived graph plus its provenance."""

    header: EGraphHeader
    egraph: EGraph
    root_ids: dict[str, int]
    input_ranges: dict = field(default_factory=dict)


def save_egraph(
    path: str | Path,
    egraph: EGraph,
    root_ids: dict[str, int],
    *,
    digest: str = "",
    schedule: str = "",
    input_ranges: dict | None = None,
) -> EGraphHeader:
    """Persist ``egraph`` atomically; returns the header that was written.

    ``digest`` should be the service cache's canonical DAG digest of the
    design the graph was saturated from, and ``schedule`` its schedule key —
    both are free-form strings here; ``load_egraph`` compares them verbatim.
    """
    path = Path(path)
    header = EGraphHeader(
        format=FORMAT_VERSION,
        digest=digest,
        schedule=schedule,
        nodes=egraph.node_count,
        classes=egraph.class_count,
        roots=tuple(sorted(root_ids)),
    )
    payload = pickle.dumps(
        (egraph, dict(root_ids), dict(input_ranges or {})),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(json.dumps(header.as_dict(), sort_keys=True).encode())
            handle.write(b"\n")
            handle.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return header


def _parse_header(line: bytes, path: Path) -> EGraphHeader:
    try:
        raw = json.loads(line.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise EGraphFormatError(
            f"{path}: unreadable artifact header", reason="header"
        ) from exc
    if not isinstance(raw, dict) or raw.get("magic") != MAGIC:
        raise EGraphFormatError(f"{path}: not a {MAGIC} artifact", reason="magic")
    if raw.get("format") != FORMAT_VERSION:
        raise EGraphFormatError(
            f"{path}: format {raw.get('format')!r}, "
            f"this build reads {FORMAT_VERSION}",
            reason="version",
        )
    try:
        return EGraphHeader(
            format=int(raw["format"]),
            digest=str(raw["digest"]),
            schedule=str(raw["schedule"]),
            nodes=int(raw["nodes"]),
            classes=int(raw["classes"]),
            roots=tuple(raw["roots"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise EGraphFormatError(
            f"{path}: malformed header fields", reason="header"
        ) from exc


def read_header(path: str | Path) -> EGraphHeader:
    """Parse only the first line — no unpickling, O(header) I/O."""
    path = Path(path)
    try:
        with path.open("rb") as handle:
            line = handle.readline()
    except OSError as exc:
        raise EGraphFormatError(
            f"{path}: cannot read artifact", reason="io"
        ) from exc
    return _parse_header(line, path)


def load_egraph(
    path: str | Path,
    *,
    expect_digest: str | None = None,
    expect_schedule: str | None = None,
) -> SavedEGraph:
    """Load an artifact, verifying compatibility before unpickling.

    ``expect_digest`` / ``expect_schedule`` (when given) must match the
    header verbatim; a mismatch raises :class:`EGraphFormatError` — callers
    treat every such error as "cold start", never as fatal.
    """
    path = Path(path)
    try:
        with path.open("rb") as handle:
            header = _parse_header(handle.readline(), path)
            if expect_digest is not None and header.digest != expect_digest:
                raise EGraphFormatError(
                    f"{path}: digest {header.digest[:12]}… does not match "
                    f"the requested design",
                    reason="digest",
                )
            if expect_schedule is not None and header.schedule != expect_schedule:
                raise EGraphFormatError(
                    f"{path}: saved under a different schedule key",
                    reason="schedule",
                )
            payload = handle.read()
    except OSError as exc:
        raise EGraphFormatError(
            f"{path}: cannot read artifact", reason="io"
        ) from exc
    try:
        egraph, root_ids, input_ranges = pickle.loads(payload)
    except Exception as exc:  # truncated/corrupt payloads raise many types
        raise EGraphFormatError(
            f"{path}: corrupt artifact payload", reason="payload"
        ) from exc
    if not isinstance(egraph, EGraph):
        raise EGraphFormatError(
            f"{path}: payload is not an e-graph", reason="payload"
        )
    return SavedEGraph(
        header=header,
        egraph=egraph,
        root_ids=dict(root_ids),
        input_ranges=dict(input_ranges),
    )


def absorb_graph(target: EGraph, source: EGraph | CoreGraph) -> dict[int, int]:
    """Import every equivalence of ``source`` into ``target``.

    Returns ``{source canonical class id -> target canonical class id}``.

    Nodes are re-interned bottom-up: a node is inserted once all its
    (source-canonical) children are mapped; when two source nodes share a
    class, their target classes are unioned — so everything ``source``
    proved equal stays equal in ``target``, while ``target``'s hashcons
    dedups shared subexpressions between the graphs (the stitch phase's
    whole point).  Insertion runs to a fixpoint; a node whose children never
    resolve (possible only for equivalences routed through classes with no
    surviving acyclic member path) is dropped, which loses an equivalence
    but never soundness.
    """
    core = source.core if isinstance(source, EGraph) else source
    find = core.uf.find
    mapping: dict[int, int] = {}
    pending = [nid for nid in range(len(core.node_op)) if core.node_alive[nid]]
    while pending:
        deferred: list[int] = []
        progressed = False
        for nid in pending:
            kids = tuple(find(child) for child in core._kid_tups[nid])
            if any(kid not in mapping for kid in kids):
                deferred.append(nid)
                continue
            new_id = target.add_node(
                core.ops[core.node_op[nid]],
                core.attrs[core.node_attr[nid]],
                tuple(mapping[kid] for kid in kids),
            )
            src_class = find(core.node_class[nid])
            prev = mapping.get(src_class)
            if prev is None:
                mapping[src_class] = new_id
            elif target.find(prev) != target.find(new_id):
                mapping[src_class] = target.union(prev, new_id)
            progressed = True
        if not progressed:
            break
        pending = deferred
    target.rebuild()
    return {src: target.find(dst) for src, dst in mapping.items()}
