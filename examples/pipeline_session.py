"""The composable pipeline API: phased schedules, sweeps, batch sessions.

Run with::

    PYTHONPATH=src python examples/pipeline_session.py
"""

from repro.designs import get_design
from repro.pipeline import (
    Extract,
    Ingest,
    Pipeline,
    RunRecord,
    Saturate,
    Session,
    Verify,
)
from repro.rewrites import compose_rules, structural_ruleset
from repro.synth.cost import weighted_key


def phased_schedule() -> None:
    """Cheap identities first, full constraint-aware rules after."""
    design = get_design("lzc_example")
    ctx = Pipeline([
        Ingest(source=design.verilog),
        Saturate(structural_ruleset(), iter_limit=2, label="saturate:structural"),
        Saturate(compose_rules(), iter_limit=4, label="saturate:full"),
        Extract(),
        Verify(),
    ]).run(input_ranges=design.input_ranges)

    print(f"== {design.name}: phased schedule")
    before, after = ctx.original_costs["out"], ctx.optimized_costs["out"]
    print(f"   delay {before.delay:.1f} -> {after.delay:.1f}, "
          f"area {before.area:.1f} -> {after.area:.1f}  [{ctx.equivalence['out']}]")
    for label, seconds in ctx.timings:
        print(f"   {label:<22} {seconds * 1000:7.1f} ms")

    # One saturation, many extraction objectives (Figure 3's sweep).
    print("\n== objective sweep (area weight vs extracted cost)")
    for weight in (0.0, 0.01, 0.1):
        Extract(key=weighted_key(1.0, weight)).run(ctx)
        cost = ctx.optimized_costs["out"]
        print(f"   w={weight:<5} delay {cost.delay:5.1f}  area {cost.area:7.1f}")


def batch_session() -> None:
    """The whole registry on a process pool, as JSON-able records."""
    print("\n== batch session (all registry designs, process pool)")
    records = Session.for_designs(iter_limit=4, node_limit=8_000).run(parallel=True)
    for record in records:
        print(f"   {record.job:<16} {record.stop_reason:<16} "
              f"delay -{record.delay_improvement:4.0%}  "
              f"area -{record.area_improvement:4.0%}")

    # Records round-trip through JSON — this is the bench trajectory format.
    assert RunRecord.from_json(records[0].to_json()) == records[0]
    print("\nrecord JSON:", records[0].to_json()[:120], "...")


# The process pool re-imports this module on spawn platforms (macOS,
# Windows) — keep all work behind the guard.
if __name__ == "__main__":
    phased_schedule()
    batch_session()
