"""Differential parity: sharded vs monolithic optimization, every design.

The contract that makes intra-design sharding safe to keep shipping:

* **cost parity** — for every output of every registry design, the
  extracted cost of the sharded-with-merge run is never worse than the
  monolithic run's (a shard explores its cone with the whole node budget,
  the monolithic e-graph shares it);
* **equivalence** — every sharded output is proved (BDD / exhaustive)
  equivalent to the original per-output cone on the design's constrained
  input domain;
* **the stress case** — ``stress_wide`` is the design built to starve the
  old per-object engine: its monolithic run used to stop on the node limit
  while shards completed.  The flat core's eager union-time hashcons
  re-keying eliminates the transient duplicates that blew the budget, so
  the contract is now two-sided: the monolithic run completes its full
  iteration budget *and* its costs are never worse than the sharded run's.
"""

from __future__ import annotations

import pytest

from repro.designs import DESIGNS, get_design
from repro.pipeline import (
    Budget,
    Extract,
    Ingest,
    MergeShards,
    Pipeline,
    Saturate,
    Shard,
    ShardSchedule,
)
from repro.rewrites import compose_rules
from repro.rtl import module_to_ir
from repro.verify import check_equivalent

#: Parity-harness budget per design: small enough to keep the suite fast,
#: large enough that every optimization mechanism fires.
ITERS = 3
NODE_LIMIT = 8_000

#: Designs whose extracted forms the BDD engine proves within the default
#: node budget.  ``fp_sub``'s full-width proof is the known multi-minute
#: check (slow-marked elsewhere) and ``interpolation``'s miter contains
#: multipliers (a classic BDD blow-up); both still must pass the randomized
#: differential check.
BDD_PROVABLE = sorted(set(DESIGNS) - {"fp_sub", "interpolation"})


def _monolithic(design, iters=ITERS, node_limit=NODE_LIMIT):
    saturate = (
        Saturate(compose_rules(), iter_limit=iters)  # stage-default node budget
        if node_limit is None
        else Saturate(compose_rules(), iter_limit=iters, node_limit=node_limit)
    )
    return Pipeline(
        [Ingest(source=design.verilog), saturate, Extract()]
    ).run(input_ranges=design.input_ranges)


def _sharded(design, iters=ITERS, node_limit=NODE_LIMIT, budget=None):
    schedule = ShardSchedule(
        iter_limit=iters, node_limit=node_limit, budget=budget
    )
    return Pipeline(
        [Ingest(source=design.verilog), Shard(schedule), MergeShards()]
    ).run(input_ranges=design.input_ranges)


@pytest.mark.parametrize("name", sorted(DESIGNS))
class TestShardParity:
    def test_sharded_covers_every_output(self, name):
        design = get_design(name)
        mono, sharded = _monolithic(design), _sharded(design)
        assert set(sharded.extracted) == set(mono.extracted) == set(mono.roots)
        # One shard per output in the default plan.
        assert len(sharded.shard_results) == len(sharded.roots)

    def test_sharded_cost_never_worse(self, name):
        design = get_design(name)
        mono, sharded = _monolithic(design), _sharded(design)
        for output in mono.roots:
            assert (
                sharded.optimized_costs[output].key
                <= mono.optimized_costs[output].key
            ), f"sharding made {name}:{output} worse"

    def test_shard_outputs_equivalent_to_original_cones(self, name):
        design = get_design(name)
        sharded = _sharded(design)
        cones = module_to_ir(design.verilog)
        for output, optimized in sharded.extracted.items():
            verdict = check_equivalent(
                cones[output], optimized, design.input_ranges
            )
            assert verdict.ok, (
                f"{name}:{output} differs at {verdict.counterexample}"
            )
            if name in BDD_PROVABLE:
                assert verdict.equivalent is True, (
                    f"{name}:{output} expected a proof, got {verdict}"
                )
                assert verdict.method in ("bdd", "exhaustive")


class TestStressDesignCompletesMonolithically:
    """The acceptance case for the flat core: ``stress_wide`` was built so
    the old per-object engine starved monolithically (transient congruence
    duplicates tripped the node limit mid-apply while per-output shards
    sailed through).  Two changes close the gap: the flat core re-keys the
    hashcons eagerly at union time, so re-instantiated right-hand sides
    dedup instead of allocating transients, and ``Saturate`` scales the
    backoff match budget by the root count, so eight cones in one e-graph
    are explored as deeply as eight one-cone shards.  The same design now
    completes its full iteration budget monolithically under the stage's
    default node budget, at cost parity with the sharded run."""

    def test_monolithic_completes_with_cost_no_worse_than_sharded(self):
        design = get_design("stress_wide")
        mono = _monolithic(design, design.iterations, node_limit=None)
        sharded = _sharded(design, design.iterations, design.node_limit)

        assert mono.report.stop_reason.value in ("iteration limit", "saturated"), (
            f"monolithic stress_wide no longer completes: "
            f"{mono.report.stop_reason.value}"
        )
        for result in sharded.shard_results:
            assert result.stop_reasons[-1] in ("iteration limit", "saturated"), (
                f"shard {result.name} did not complete: {result.stop_reasons}"
            )

        worse = [
            output
            for output in mono.roots
            if mono.optimized_costs[output].key
            > sharded.optimized_costs[output].key
        ]
        assert not worse, f"monolithic run worse than sharded on {worse}"

    def test_shard_walls_cover_every_shard(self):
        design = get_design("stress_wide")
        sharded = _sharded(design, design.iterations, design.node_limit)
        walls = sharded.artifacts["shard_walls"]
        assert set(walls) == {r.name for r in sharded.shard_results}
        assert all(wall > 0 for wall in walls.values())


@pytest.mark.parametrize("name", sorted(DESIGNS))
class TestBudgetedShardParity:
    """Sharded+budgeted runs pass the same differential contract: under a
    generous shared budget (which never binds at these limits) the governed
    flow extracts exactly what the ungoverned one does, and the budget's
    only effect is the ledger it leaves behind."""

    def test_generous_budget_changes_nothing_but_the_ledger(self, name):
        design = get_design(name)
        plain = _sharded(design)
        governed = _sharded(design, budget=Budget(time_s=120.0))
        assert governed.extracted == plain.extracted
        for output in plain.roots:
            assert (
                governed.optimized_costs[output].key
                == plain.optimized_costs[output].key
            )
        assert governed.governor is not None
        shard_rows = {f"shard:{r.name}" for r in governed.shard_results}
        assert set(governed.governor.ledger) >= shard_rows
        # The only other rows are wall-time charges for the non-shard
        # stages that ran after the governor was installed.
        assert set(governed.governor.ledger) - shard_rows <= {"merge-shards"}
