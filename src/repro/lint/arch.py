"""Architectural linter: layer map, stdlib policy, clock injection, globals.

This module is the **single source of truth** for the import architecture.
``tests/test_import_cycles.py`` imports :data:`ENTRY_POINTS` and the layer
map from here, so the clean-interpreter test and the static check cannot
drift.

The layer map generalizes the historical cycle pin: *any* module-level
import edge that does not go strictly downward through :data:`LAYERS` is a
finding, not just the one ``repro.opt`` <-> ``repro.pipeline`` cycle that
bit once.  Function-scope (lazy) imports may point upward — that is the
sanctioned cycle-breaking idiom — but each upward lazy edge must carry a
reason-coded inline waiver (rule id ``AR-LAYER``) naming the inversion it
implements, so deliberate inversions stay enumerable.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass

from repro.lint.model import Finding, SourceModule, SourceTree

# ------------------------------------------------------------------ layer map
#: Units ordered bottom -> top.  A module may import only *strictly lower*
#: units (imports within its own unit are free, subject to the module-level
#: cycle check).  ``budget`` is ``repro.pipeline.budget`` alone: the
#: stdlib-only foundation everything (including the e-graph runner) may
#: time itself against.  ``egraph-viz`` is ``repro.egraph.dot`` alone: the
#: exporter reads analysis data, so it sits *above* ``analysis`` while the
#: engine proper sits below it.
LAYERS: tuple[str, ...] = (
    "budget",
    "intervals",
    "ir",
    "egraph",
    "analysis",
    "egraph-viz",
    "rewrites",
    "rtl",
    "synth",
    "verify",
    "designs",
    "pipeline",
    "service",
    "solve",
    "lint",
    "opt",
    "repro",
    "cli",
    "main",
)

#: Module (or package prefix) -> unit.  Longest dotted prefix wins, so the
#: two module-granular carve-outs shadow their packages.
MODULE_UNITS: dict[str, str] = {
    "repro": "repro",
    "repro.__main__": "main",
    "repro.cli": "cli",
    "repro.intervals": "intervals",
    "repro.ir": "ir",
    "repro.egraph": "egraph",
    "repro.egraph.dot": "egraph-viz",
    "repro.analysis": "analysis",
    "repro.rewrites": "rewrites",
    "repro.rtl": "rtl",
    "repro.synth": "synth",
    "repro.verify": "verify",
    "repro.designs": "designs",
    "repro.pipeline": "pipeline",
    "repro.pipeline.budget": "budget",
    "repro.service": "service",
    "repro.solve": "solve",
    "repro.lint": "lint",
    "repro.opt": "opt",
}

_RANK = {unit: index for index, unit in enumerate(LAYERS)}

#: Module entry points that must import from a cold interpreter (consumed
#: by ``tests/test_import_cycles.py``; the subprocess check catches what a
#: warm ``sys.modules`` hides from in-process tests).
ENTRY_POINTS: tuple[str, ...] = (
    "repro",
    "repro.pipeline.stages",
    "repro.pipeline",
    "repro.opt",
    "repro.opt.report",
    "repro.synth.treecost",
    "repro.solve",
    "repro.solve.extract_opt",
    "repro.synth.sweep",
    "repro.lint",
    "repro.cli",
)

#: Modules restricted to the Python standard library alone (no ``repro.*``
#: either): the budget subsystem is importable from any worker with zero
#: package baggage, and the linter itself must not import what it audits
#: at module scope.
STDLIB_ONLY: frozenset[str] = frozenset({"repro.pipeline.budget"})

#: Units restricted to stdlib + ``repro.*`` (no third-party imports): the
#: solver and service subsystems advertise pure-python portability, and the
#: linter gates them.
INTERNAL_ONLY_UNITS: frozenset[str] = frozenset({"solve", "service", "lint"})

#: Audited module-level mutable state: (module, name) -> why sharing it is
#: safe.  Everything here is either write-once at import time, an interning
#: table whose entries are immutable and idempotent, or a memo cache whose
#: values are pure functions of the key (so a racy double-compute is
#: harmless and process pools each own a private copy anyway).
SHARED_STATE_ALLOWLIST: dict[tuple[str, str], str] = {
    ("repro.ir.ops", "OPS_BY_NAME"):
        "operator catalogue; written once at import, identity-keyed reads only",
    ("repro.egraph.pattern", "_SYMBOLS"):
        "parser symbol table; written once at import",
    ("repro.egraph.query", "_COMPILED"):
        "compiled-matcher memo; value is a pure function of the pattern, "
        "racy double-compile is idempotent",
    ("repro.rewrites.rulesets", "RULESETS"):
        "ruleset registry; written once at import (immutability pinned by "
        "tests/test_parallel_safety.py)",
    ("repro.rewrites.rulesets", "_COMPOSE_CACHE"):
        "memo of stateless Rewrite tuples; value is a pure function of the "
        "key, racy double-compute is idempotent",
    ("repro.intervals.iset", "_INTERN"):
        "IntervalSet interning table; entries immutable, insertion idempotent, "
        "and per-process (pickling re-interns on the far side)",
    ("repro.analysis.transfer", "_TRANSFER_CACHE"):
        "bounded memo of pure transfer-function results; idempotent inserts",
    ("repro.analysis.tree_ranges", "_INVERSIONS"):
        "comparison-inversion table; written once at import",
    ("repro.designs.registry", "_ROOTS_CACHE"):
        "elaborated-IR memo; value is a pure function of the design name "
        "(registry designs are immutable), racy double-parse is idempotent",
    ("repro.pipeline.budget", "ALLOCATORS"):
        "allocator dispatch table; written once at import",
    ("repro.rtl.lexer", "KEYWORDS"):
        "Verilog keyword set; written once at import",
    ("repro.rtl.parser", "_LEVELS"):
        "operator-precedence table; written once at import",
    ("repro.synth.cost", "CONST_HINT_POSITIONS"):
        "const-hint position table; written once at import",
    ("repro.synth.cost", "_MODEL_MEMO"):
        "delay/area-model memo; pure function of the key, idempotent",
    ("repro.synth.netlist", "_EVAL"):
        "gate-evaluation dispatch table; written once at import",
    ("repro.cli", "_DISPATCH"):
        "subcommand dispatch table; written once at import",
    # The linter's own configuration tables: declared once here, read-only
    # everywhere (the lint gate itself fails if a fourth copy drifts in).
    ("repro.lint.arch", "MODULE_UNITS"):
        "layer-map table; written once at import",
    ("repro.lint.arch", "_RANK"):
        "derived layer ranks; written once at import",
    ("repro.lint.arch", "SHARED_STATE_ALLOWLIST"):
        "this allowlist; written once at import",
    ("repro.lint.concurrency", "WORKER_ENTRY_POINTS"):
        "fan-out entry-point table; written once at import",
    ("repro.lint.concurrency", "AUDITED_WRITES"):
        "audited-write ledger; written once at import",
    ("repro.lint.rules", "DYNAMIC_CONTRACTS"):
        "dynamic-rule contract registry; written once at import",
}


def unit_of(module: str) -> str | None:
    """The layer unit owning ``module`` (longest dotted-prefix match).

    The bare package entry (``repro`` -> ``repro``) covers only the
    package's ``__init__`` itself, never acts as a prefix catch-all: a new
    top-level module must be added to :data:`MODULE_UNITS` explicitly, or
    the layer check reports it unmapped.
    """
    root = module.split(".", 1)[0]
    unit = MODULE_UNITS.get(module)
    if unit is not None:
        return unit
    name = module
    while "." in name:
        name = name.rsplit(".", 1)[0]
        if name == root:
            return None
        unit = MODULE_UNITS.get(name)
        if unit is not None:
            return unit
    return None


# ------------------------------------------------------------------ ast walks
@dataclass(frozen=True)
class ImportEdge:
    """One intra-package import, annotated with laziness and location."""

    importer: str
    imported: str
    lazy: bool
    line: int


def _iter_imports(node: ast.AST, lazy: bool = False):
    """Yield ``(import_node, lazy)``; function bodies are lazy, class bodies
    execute at import time and stay eager."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.Import, ast.ImportFrom)):
            yield child, lazy
        elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from _iter_imports(child, True)
        else:
            yield from _iter_imports(child, lazy)


def _import_targets(node: "ast.Import | ast.ImportFrom", importer: str) -> list[str]:
    """Absolute module names an import statement binds."""
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    base = node.module or ""
    if node.level:
        parts = importer.split(".")
        parts = parts[: len(parts) - node.level]
        base = ".".join(parts + ([base] if base else []))
    return [base] if base else []


def import_edges(module: SourceModule, tree: SourceTree) -> list[ImportEdge]:
    """Every intra-package import edge out of ``module``.

    ``from repro.egraph import pattern`` resolves to the deeper module
    ``repro.egraph.pattern`` when the tree holds one (it is a module
    import, not an attribute access).
    """
    root_pkg = module.name.split(".")[0]
    edges = []
    for node, lazy in _iter_imports(module.tree):
        for target in _import_targets(node, module.name):
            if not target.startswith(root_pkg):
                continue
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    deeper = f"{target}.{alias.name}"
                    resolved = deeper if deeper in tree else target
                    edges.append(
                        ImportEdge(module.name, resolved, lazy, node.lineno)
                    )
            else:
                edges.append(ImportEdge(module.name, target, lazy, node.lineno))
    return edges


# -------------------------------------------------------------------- AR-LAYER
def check_layers(tree: SourceTree) -> list[Finding]:
    """Layer-map conformance plus module-level acyclicity."""
    findings = []
    unmapped = {m.name for m in tree if unit_of(m.name) is None}
    for name in sorted(unmapped):
        module = tree.get(name)
        findings.append(
            Finding(
                "AR-LAYER",
                f"{name}:unmapped",
                f"module {name} is not covered by the layer map — add it "
                "to MODULE_UNITS in repro/lint/arch.py",
                module=name,
                path=module.path if module else "",
            )
        )
    eager_graph: dict[str, set[str]] = {m.name: set() for m in tree}
    for module in tree:
        for edge in import_edges(module, tree):
            if edge.imported == module.name:
                continue
            if edge.importer in unmapped or edge.imported in unmapped:
                continue
            src_unit, dst_unit = unit_of(edge.importer), unit_of(edge.imported)
            if dst_unit is None:
                # An import of a module outside the tree (namespace quirks);
                # nothing to rank it against.
                continue
            if not edge.lazy and edge.imported in eager_graph:
                eager_graph[module.name].add(edge.imported)
            if src_unit == dst_unit:
                continue
            if _RANK[src_unit] > _RANK[dst_unit]:
                continue
            kind = "lazy " if edge.lazy else ""
            findings.append(
                Finding(
                    "AR-LAYER",
                    f"{module.name}->{edge.imported}",
                    f"{kind}import of {edge.imported} ({dst_unit}) from "
                    f"{module.name} ({src_unit}) points up the layer map "
                    f"{' -> '.join(LAYERS)}"
                    + (
                        "; waive with a reason if this is a deliberate "
                        "inversion" if edge.lazy else ""
                    ),
                    module=module.name,
                    path=module.path,
                    line=edge.line,
                    detail={"lazy": edge.lazy},
                )
            )
    findings.extend(_cycle_findings(eager_graph, tree))
    return findings


def _cycle_findings(graph: dict[str, set[str]], tree: SourceTree) -> list[Finding]:
    """Module-level cycles among eager edges (iterative DFS, path tracked)."""
    done: set[str] = set()
    findings = []
    for start in sorted(graph):
        if start in done:
            continue
        # Each frame is (module, child iterator); ``path`` mirrors the stack.
        stack = [(start, iter(sorted(graph[start])))]
        path, on_path = [start], {start}
        while stack:
            node, children = stack[-1]
            succ = next(children, None)
            if succ is None:
                stack.pop()
                path.pop()
                on_path.discard(node)
                done.add(node)
                continue
            if succ in on_path:
                cycle = path[path.index(succ):] + [succ]
                module = tree.get(succ)
                findings.append(
                    Finding(
                        "AR-LAYER",
                        f"cycle:{succ}",
                        "module-level import cycle: " + " -> ".join(cycle),
                        module=succ,
                        path=module.path if module else "",
                    )
                )
            elif succ not in done:
                stack.append((succ, iter(sorted(graph[succ]))))
                path.append(succ)
                on_path.add(succ)
    return findings


# ------------------------------------------------------------------- AR-STDLIB
def check_stdlib(tree: SourceTree) -> list[Finding]:
    """Stdlib-only / internal-only import policy."""
    findings = []
    stdlib = sys.stdlib_module_names
    for module in tree:
        root_pkg = module.name.split(".")[0]
        strict = module.name in STDLIB_ONLY
        internal = unit_of(module.name) in INTERNAL_ONLY_UNITS
        if not (strict or internal):
            continue
        for node, _lazy in _iter_imports(module.tree):
            for target in _import_targets(node, module.name):
                top = target.split(".")[0]
                if top in stdlib or top == "__future__":
                    continue
                if top == root_pkg:
                    if not strict:
                        continue
                    message = (
                        f"{module.name} is stdlib-only by contract (workers "
                        f"import it with zero package baggage) but imports "
                        f"{target}"
                    )
                else:
                    message = (
                        f"{module.name} sits in the pure-python "
                        f"'{unit_of(module.name)}' unit but imports the "
                        f"third-party module {target}"
                    )
                findings.append(
                    Finding(
                        "AR-STDLIB",
                        f"{module.name}->{target}",
                        message,
                        module=module.name,
                        path=module.path,
                        line=node.lineno,
                    )
                )
    return findings


# -------------------------------------------------------------------- AR-CLOCK
_CLOCK_NAMES = frozenset({"monotonic", "perf_counter", "time"})


def check_clocks(tree: SourceTree) -> list[Finding]:
    """Bare wall-clock *calls* outside the budget unit.

    Referencing ``time.monotonic`` as an injectable default
    (``clock = clock if clock is not None else time.monotonic``) is the
    sanctioned idiom and is not flagged — only direct calls are, because a
    direct call cannot be faked by deadline tests.
    """
    findings = []
    for module in tree:
        if unit_of(module.name) == "budget":
            continue
        aliased = {
            alias.asname or alias.name
            for node, _ in _iter_imports(module.tree)
            if isinstance(node, ast.ImportFrom) and node.module == "time"
            for alias in node.names
            if alias.name in _CLOCK_NAMES
        }
        for call, qualname in _walk_calls(module.tree):
            func = call.func
            name = None
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
                and func.attr in _CLOCK_NAMES
            ):
                name = f"time.{func.attr}"
            elif isinstance(func, ast.Name) and func.id in aliased:
                name = func.id
            if name is None:
                continue
            findings.append(
                Finding(
                    "AR-CLOCK",
                    f"{module.name}:{qualname or '<module>'}",
                    f"bare {name}() call — accept an injectable `clock=` "
                    "(defaulting to the real clock) so deadline behaviour "
                    "stays testable with a fake clock",
                    module=module.name,
                    path=module.path,
                    line=call.lineno,
                )
            )
    return findings


def _walk_calls(tree: ast.Module):
    """Yield ``(Call, enclosing_qualname)`` over the whole module."""

    def rec(node: ast.AST, qual: str):
        for child in ast.iter_child_nodes(node):
            inner = qual
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                inner = f"{qual}.{child.name}" if qual else child.name
            if isinstance(child, ast.Call):
                yield child, qual
            yield from rec(child, inner)

    yield from rec(tree, "")


# ------------------------------------------------------------------- AR-GLOBAL
_MUTABLE_CALLS = frozenset(
    {"dict", "list", "set", "bytearray", "defaultdict", "deque", "Counter",
     "OrderedDict", "WeakValueDictionary", "WeakKeyDictionary"}
)


def _is_mutable_value(value: ast.AST) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                          ast.ListComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CALLS
    return False


def module_mutable_globals(module: SourceModule) -> dict[str, int]:
    """Module-level names bound to mutable containers -> definition line."""
    out: dict[str, int] = {}
    for stmt in module.tree.body:
        targets: list[ast.expr] = []
        value = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None or not _is_mutable_value(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name) and not target.id.startswith("__"):
                out[target.id] = stmt.lineno
    return out


def check_globals(tree: SourceTree) -> list[Finding]:
    """Mutable module-level containers outside the audited allowlist."""
    findings = []
    for module in tree:
        for name, line in module_mutable_globals(module).items():
            if (module.name, name) in SHARED_STATE_ALLOWLIST:
                continue
            findings.append(
                Finding(
                    "AR-GLOBAL",
                    f"{module.name}:{name}",
                    f"module-level mutable container {name!r} — shared "
                    "state must be in SHARED_STATE_ALLOWLIST with an audit "
                    "reason (or become immutable / instance state)",
                    module=module.name,
                    path=module.path,
                    line=line,
                )
            )
    return findings


def check_arch(tree: SourceTree) -> list[Finding]:
    """All architectural checks over one source tree."""
    return (
        check_layers(tree)
        + check_stdlib(tree)
        + check_clocks(tree)
        + check_globals(tree)
    )
