"""Verilog subset: lexer + parser."""

import pytest

from repro.rtl import ParseError, parse_module
from repro.rtl.lexer import LexError, parse_sized_literal, tokenize


class TestLexer:
    def test_tokens(self):
        toks = tokenize("assign x = a + 8'hFF; // comment")
        kinds = [t.kind for t in toks]
        assert "sized" in kinds and kinds[-1] == "eof"

    def test_block_comment(self):
        toks = tokenize("a /* junk \n junk */ b")
        assert [t.text for t in toks[:-1]] == ["a", "b"]

    def test_line_numbers(self):
        toks = tokenize("a\nb\nc")
        assert [t.line for t in toks[:-1]] == [1, 2, 3]

    def test_sized_literals(self):
        assert parse_sized_literal("8'd255") == (8, 255)
        assert parse_sized_literal("4'b1010") == (4, 10)
        assert parse_sized_literal("12'hABC") == (12, 0xABC)
        assert parse_sized_literal("8'hF_F") == (8, 255)

    def test_xz_rejected(self):
        with pytest.raises(LexError):
            parse_sized_literal("4'b10xz")


class TestParser:
    def test_ansi_ports(self):
        m = parse_module(
            "module m (input [7:0] a, output [8:0] y); assign y = a; endmodule"
        )
        assert m.nets["a"].direction == "input" and m.nets["a"].width == 8
        assert m.nets["y"].width == 9

    def test_non_ansi_declarations(self):
        m = parse_module(
            """
            module m (input [3:0] a, output y);
              wire [4:0] t = a + 1;
              assign y = t[4];
            endmodule
            """
        )
        assert m.nets["t"].width == 5
        assert len(m.assigns) == 2

    def test_precedence(self):
        m = parse_module(
            "module m (input [3:0] a, input [3:0] b, output [7:0] y);"
            "assign y = a + b << 1; endmodule"
        )
        # << binds looser than +
        rhs = m.assigns[0][1]
        assert rhs.op == "<<"

    def test_ternary_nests_right(self):
        m = parse_module(
            "module m (input a, input b, output y);"
            "assign y = a ? 1 : b ? 2 : 3; endmodule"
        )
        rhs = m.assigns[0][1]
        assert rhs.if_false.cond.name == "b"

    def test_concat_and_replication(self):
        m = parse_module(
            "module m (input [3:0] a, output [11:0] y);"
            "assign y = {a, {2{a}}}; endmodule"
        )
        rhs = m.assigns[0][1]
        assert len(rhs.parts) == 2

    def test_casez_wildcards(self):
        m = parse_module(
            """
            module m (input [2:0] a, output [1:0] y);
              reg [1:0] y;
              always @(*) begin
                casez (a)
                  3'b1??: y = 0;
                  3'b01?: y = 1;
                  default: y = 2;
                endcase
              end
            endmodule
            """
        )
        case = m.cases[0]
        assert case.is_casez
        assert case.arms[0][0].mask == 0b100
        assert case.arms[1][0].value == 0b010

    def test_division_rejected(self):
        with pytest.raises(ParseError):
            parse_module("module m (input a, output y); assign y = a / 2; endmodule")

    def test_signed_rejected(self):
        with pytest.raises(ParseError):
            parse_module("module m (input signed [3:0] a, output y); endmodule")

    def test_part_select_must_be_const(self):
        with pytest.raises(ParseError):
            parse_module(
                "module m (input [3:0] a, input [1:0] i, output y);"
                "assign y = a[i:0]; endmodule"
            )
