"""The benchmark designs themselves: well-formedness and semantics."""

import random

import pytest

from repro.designs import (
    DESIGNS,
    fp_sub_behavioural_ir,
    fp_sub_behavioural_verilog,
    fp_sub_dual_path_ir,
    fp_sub_input_ranges,
    get_design,
)
from repro.ir import ops
from repro.ir.evaluate import evaluate_total
from repro.rtl import module_to_ir
from repro.verify import check_equivalent


def test_registry_complete():
    assert set(DESIGNS) == {
        "fp_sub", "float_to_unorm", "interpolation", "unorm_to_float",
        "lzc_example", "stress_wide",
    }
    with pytest.raises(KeyError):
        get_design("nope")


@pytest.mark.parametrize("name", sorted(DESIGNS))
def test_designs_parse_and_elaborate(name):
    design = get_design(name)
    outs = module_to_ir(design.verilog)
    assert design.output in outs
    assert outs[design.output].count_nodes() > 3


class TestFpSubSemantics:
    """The behavioural design must actually compute FP subtraction."""

    @staticmethod
    def reference(ma, mb, ea, eb, man_width=10):
        """Round-toward-zero mantissa of |2^ea*ma - 2^eb*mb| / 2^min."""
        a_val, b_val = ma << ea, mb << eb
        diff = abs(a_val - b_val)
        if diff == 0:
            return 0
        # Normalize: drop the leading one, keep man_width bits below it.
        shift = diff.bit_length() - 1 - man_width
        out = diff >> shift if shift >= 0 else diff << -shift
        return out & ((1 << man_width) - 1)

    def test_against_arithmetic_reference(self):
        expr = fp_sub_behavioural_ir(exp_width=3, man_width=3)
        rng = random.Random(2)
        for _ in range(500):
            ma, mb = rng.randint(8, 15), rng.randint(8, 15)
            ea, eb = rng.randrange(8), rng.randrange(8)
            got = evaluate_total(expr, {"MA": ma, "MB": mb, "ea": ea, "eb": eb})
            assert got == self.reference(ma, mb, ea, eb, 3), (ma, mb, ea, eb)

    def test_dual_path_equivalent_small_exhaustive(self):
        behav = fp_sub_behavioural_ir(exp_width=2, man_width=2)
        dual = fp_sub_dual_path_ir(exp_width=2, man_width=2)
        verdict = check_equivalent(
            behav, dual, fp_sub_input_ranges(exp_width=2, man_width=2)
        )
        assert verdict.equivalent is True

    @pytest.mark.slow
    def test_dual_path_equivalent_medium(self):
        behav = fp_sub_behavioural_ir(exp_width=3, man_width=4)
        dual = fp_sub_dual_path_ir(exp_width=3, man_width=4)
        verdict = check_equivalent(
            behav, dual, fp_sub_input_ranges(exp_width=3, man_width=4),
            exhaustive_budget=1 << 16,
        )
        assert verdict.equivalent is True

    def test_parameterized_generation(self):
        text = fp_sub_behavioural_verilog(exp_width=4, man_width=6)
        outs = module_to_ir(text)
        assert any(
            n.op is ops.LZC and n.attrs[0] == 3 * 6 + 1 + 7
            for n in outs["out"].walk()
        )


class TestInterpolationSemantics:
    def test_bilinear_math(self):
        outs = module_to_ir(get_design("interpolation").verilog)
        expr = outs["out"]
        rng = random.Random(3)
        for _ in range(300):
            env = {
                "p00": rng.randrange(256), "p01": rng.randrange(256),
                "p10": rng.randrange(256), "p11": rng.randrange(256),
                "wx": rng.randrange(16), "wy": rng.randrange(16),
                "mode": rng.randrange(2),
            }
            got = evaluate_total(expr, env)
            if env["mode"]:
                assert got == 512 + env["p00"]
            else:
                wx, wy = env["wx"], env["wy"]
                top = env["p00"] * (16 - wx) + env["p01"] * wx
                bot = env["p10"] * (16 - wx) + env["p11"] * wx
                assert got == (top * (16 - wy) + bot * wy + 128) >> 8


class TestConversionSemantics:
    def test_float_to_unorm_known_points(self):
        outs = module_to_ir(get_design("float_to_unorm").verilog)
        expr = outs["out"]
        # 1.0 (e=15, m=0) -> 2047; 0.5 (e=14, m=0) -> floor(2047/2) = 1023.
        assert evaluate_total(expr, {"e": 15, "m": 0}) == 2047
        assert evaluate_total(expr, {"e": 14, "m": 0}) == 1023
        assert evaluate_total(expr, {"e": 1, "m": 0}) == 0  # 2^-14 rounds down

    def test_unorm_to_float_zero_path(self):
        outs = module_to_ir(get_design("unorm_to_float").verilog)
        expr = outs["out"]
        assert evaluate_total(expr, {"u": 0}) == 0
        # u = 2047: no leading zeros -> e = 14, mantissa = low 10 bits.
        got = evaluate_total(expr, {"u": 2047})
        assert (got >> 10) == 14 and (got & 1023) == 1023
