"""A single integer interval with optionally unbounded endpoints.

Bounds are plain Python integers; ``None`` encodes minus infinity for the
lower bound and plus infinity for the upper bound.  E-class abstractions of
bitvector designs are always bounded (variables start at ``[0, 2^w - 1]``),
but the constraint intervals of eq. (4) in the paper — e.g. ``(-inf, c')`` for
a constraint ``x < c'`` — are half-lines, so unboundedness must be
representable.  Arithmetic on unbounded operands escalates conservatively.
"""

from __future__ import annotations

from dataclasses import dataclass

# Sentinels re-exported for readability at call sites.
NEG_INF = None
POS_INF = None


def _lo_le(a: int | None, b: int | None) -> bool:
    """Is lower bound ``a`` <= lower bound ``b``? (``None`` = -inf)."""
    if a is None:
        return True
    if b is None:
        return False
    return a <= b


def _hi_le(a: int | None, b: int | None) -> bool:
    """Is upper bound ``a`` <= upper bound ``b``? (``None`` = +inf)."""
    if b is None:
        return True
    if a is None:
        return False
    return a <= b


@dataclass(frozen=True, slots=True)
class Interval:
    """Closed integer interval ``[lo, hi]``; ``None`` bounds are infinite."""

    lo: int | None
    hi: int | None

    def __post_init__(self) -> None:
        if self.lo is not None and self.hi is not None and self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # ------------------------------------------------------------------ basic
    @property
    def bounded(self) -> bool:
        """True when both endpoints are finite."""
        return self.lo is not None and self.hi is not None

    @property
    def is_point(self) -> bool:
        """True when the interval contains exactly one integer."""
        return self.lo is not None and self.lo == self.hi

    def size(self) -> int | None:
        """Number of integers contained, or ``None`` when infinite."""
        if not self.bounded:
            return None
        return self.hi - self.lo + 1

    def contains(self, value: int) -> bool:
        """Membership test for a concrete integer."""
        lo_ok = self.lo is None or value >= self.lo
        hi_ok = self.hi is None or value <= self.hi
        return lo_ok and hi_ok

    def contains_interval(self, other: "Interval") -> bool:
        """True when ``other`` is a subset of this interval."""
        return _lo_le(self.lo, other.lo) and _hi_le(other.hi, self.hi)

    # -------------------------------------------------------------- structure
    def intersect(self, other: "Interval") -> "Interval | None":
        """Intersection, or ``None`` when the intervals are disjoint."""
        if _lo_le(self.lo, other.lo):
            lo = other.lo
        else:
            lo = self.lo
        if _hi_le(self.hi, other.hi):
            hi = self.hi
        else:
            hi = other.hi
        if lo is not None and hi is not None and lo > hi:
            return None
        return Interval(lo, hi)

    def overlaps_or_adjacent(self, other: "Interval") -> bool:
        """True when the union of the two intervals is itself an interval.

        Integer intervals ``[1, 2]`` and ``[3, 4]`` are adjacent and merge to
        ``[1, 4]`` even though they do not overlap.
        """
        if self.lo is not None and other.hi is not None and other.hi + 1 < self.lo:
            return False
        if other.lo is not None and self.hi is not None and self.hi + 1 < other.lo:
            return False
        return True

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both operands."""
        lo = self.lo if _lo_le(self.lo, other.lo) else other.lo
        hi = other.hi if _hi_le(self.hi, other.hi) else self.hi
        return Interval(lo, hi)

    def __repr__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"
