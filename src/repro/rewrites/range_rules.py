"""Dynamic rules justified by the interval analysis (Section IV-B).

These are the "chain of branch specific rewrites and bitwidth reductions"
the paper describes: once ASSUME refinement tightens a class's range, these
rules exploit it structurally.  (Pure constant folding — a class whose range
is a singleton — happens in the analysis ``modify`` hook, both for total
classes and, wrapped in the same constraints, for ASSUME classes.)

* ``abs-identity`` / ``abs-negate`` — the paper's ``fabs(ASSUME(x, x>0)) ->
  ASSUME(x, x>0)`` example (Section IV-B);
* ``trunc-elim`` — truncation whose operand provably fits is a wire (this is
  how bitwidth reduction reaches the extracted netlist);
* ``lzc-narrow`` — Figure 1: when the range proves at most ``k`` leading
  zeros, a ``w``-bit LZC shrinks to a ``k+1``-bit LZC of the top bits;
* ``lzc-shl`` — an LZC of a left-shifted value counts on the unshifted value
  at reduced width;
* ``min-resolve`` / ``max-resolve`` — order proven by disjoint ranges.
"""

from __future__ import annotations

from repro.analysis import range_of, total_of
from repro.egraph.egraph import EGraph
from repro.egraph.rewrite import Rewrite, dynamic
from repro.intervals import IntervalSet
from repro.ir import ops


def range_rules() -> list[Rewrite]:
    """All analysis-driven structural rules."""
    return [
        abs_identity_rule(),
        abs_negate_rule(),
        trunc_elim_rule(),
        lzc_narrow_rule(),
        lzc_shl_rule(),
        lzc_width_reduce_rule(),
        lzc_norm_invariant_rule(),
        minmax_resolve_rule(),
    ]


def abs_identity_rule() -> Rewrite:
    """``ABS(x) -> x`` when the range proves ``x >= 0``."""

    def search(egraph: EGraph, index: dict):
        for class_id, enode in index.get(ops.ABS, ()):
            child = egraph.find(enode.children[0])
            low = range_of(egraph, child).min()
            if low is not None and low >= 0:
                yield egraph.find(class_id), {"x": child}

    def apply(egraph: EGraph, env: dict, class_id: int):
        return egraph.find(env["x"])

    return dynamic("abs-identity", search, apply)


def abs_negate_rule() -> Rewrite:
    """``ABS(x) -> NEG(x)`` when the range proves ``x <= 0``."""

    def search(egraph: EGraph, index: dict):
        for class_id, enode in index.get(ops.ABS, ()):
            child = egraph.find(enode.children[0])
            high = range_of(egraph, child).max()
            if high is not None and high <= 0:
                yield egraph.find(class_id), {"x": child}

    def apply(egraph: EGraph, env: dict, class_id: int):
        return egraph.add_node(ops.NEG, (), (egraph.find(env["x"]),))

    return dynamic("abs-negate", search, apply)


def trunc_elim_rule() -> Rewrite:
    """``TRUNC_w(x) -> x`` when the range proves ``x`` fits in ``w`` bits."""

    def search(egraph: EGraph, index: dict):
        for class_id, enode in index.get(ops.TRUNC, ()):
            (width,) = enode.attrs
            child = egraph.find(enode.children[0])
            if range_of(egraph, child).issubset(IntervalSet.unsigned(width)):
                yield egraph.find(class_id), {"x": child}

    def apply(egraph: EGraph, env: dict, class_id: int):
        return egraph.find(env["x"])

    return dynamic("trunc-elim", search, apply)


def lzc_narrow_rule() -> Rewrite:
    """Figure 1: ``LZC_w(x) -> LZC_{k+1}(x >> (w-k-1))`` when lzc(x) <= k.

    The bound ``k`` comes from the analysis: ``x >= 2^(w-1-k)`` implies at
    most ``k`` leading zeros, so only the top ``k+1`` bits can matter.
    """

    def search(egraph: EGraph, index: dict):
        for class_id, enode in index.get(ops.LZC, ()):
            (width,) = enode.attrs
            child = egraph.find(enode.children[0])
            low = range_of(egraph, child).min()
            if low is None or low < 1:
                continue
            max_leading_zeros = width - low.bit_length()
            if max_leading_zeros + 1 >= width:
                continue
            yield egraph.find(class_id), {
                "x": child, "w": width, "k": max_leading_zeros,
            }

    def apply(egraph: EGraph, env: dict, class_id: int):
        width, k = env["w"], env["k"]
        shift = egraph.add_const(width - k - 1)
        shifted = egraph.add_node(ops.SHR, (), (egraph.find(env["x"]), shift))
        return egraph.add_node(ops.LZC, (k + 1,), (shifted,))

    return dynamic("lzc-narrow", search, apply)


def lzc_shl_rule() -> Rewrite:
    """``LZC_w(a << s) -> LZC_{w-s}(a)`` when ``a`` fits in ``w - s`` bits."""

    def search(egraph: EGraph, index: dict):
        for class_id, enode in index.get(ops.LZC, ()):
            (width,) = enode.attrs
            child = egraph.find(enode.children[0])
            for inner in egraph[child].nodes:
                if inner.op is not ops.SHL:
                    continue
                shift = egraph.class_const(inner.children[1])
                if shift is None or not 0 < shift < width:
                    continue
                base = egraph.find(inner.children[0])
                # a == 0 breaks the identity (lzc_w(0) = w != w-s), so the
                # range must exclude zero as well as fit the narrow width.
                base_range = range_of(egraph, base)
                lo = base_range.min()
                if lo is None or lo < 1:
                    continue
                if base_range.issubset(IntervalSet.unsigned(width - shift)):
                    yield egraph.find(class_id), {"a": base, "w2": width - shift}

    def apply(egraph: EGraph, env: dict, class_id: int):
        return egraph.add_node(ops.LZC, (env["w2"],), (egraph.find(env["a"]),))

    return dynamic("lzc-shl", search, apply)


def lzc_width_reduce_rule() -> Rewrite:
    """``LZC_w(x) -> (w - m) + LZC_m(x)`` when ``x`` provably fits m bits.

    Unlike ``lzc-narrow`` this works even when ``x`` may be zero (the near
    path of the FP subtractor, where catastrophic cancellation can zero the
    significand): every leading zero above bit ``m`` is a constant.
    """

    def search(egraph: EGraph, index: dict):
        for class_id, enode in index.get(ops.LZC, ()):
            (width,) = enode.attrs
            child = egraph.find(enode.children[0])
            top = range_of(egraph, child).max()
            if top is None:
                continue
            # Negative values make both sides * (LZC is undefined there),
            # so only the upper bound constrains the rewrite.
            m = max(top.bit_length(), 1)
            if m < width:
                yield egraph.find(class_id), {"x": child, "w": width, "m": m}

    def apply(egraph: EGraph, env: dict, class_id: int):
        narrow = egraph.add_node(ops.LZC, (env["m"],), (egraph.find(env["x"]),))
        offset = egraph.add_const(env["w"] - env["m"])
        return egraph.add_node(ops.ADD, (), (offset, narrow))

    return dynamic("lzc-width-reduce", search, apply)


def lzc_norm_invariant_rule() -> Rewrite:
    """``(a << c) << LZC_w(a << c)  ->  a << LZC_w(a)``.

    Normalization is left-shift invariant: pre-shifting by ``c`` only
    reduces the leading-zero count by ``c``, which the normalizing shift
    then does not need to apply.  This is the rewrite that collapses the
    behavioural FP subtractor's 42-bit normalize onto the narrow near-path
    significand (Section V).  Requires ``c`` total and non-negative and both
    ``a`` and ``a << c`` to fit ``w`` bits.
    """

    def search(egraph: EGraph, index: dict):
        for class_id, enode in index.get(ops.SHL, ()):
            shifted, amount = (egraph.find(c) for c in enode.children)
            for lzc_node in egraph[amount].nodes:
                if lzc_node.op is not ops.LZC:
                    continue
                (width,) = lzc_node.attrs
                if egraph.find(lzc_node.children[0]) != shifted:
                    continue
                # Negative values are * on both sides; only the upper bound
                # must stay inside the LZC's width.
                top = range_of(egraph, shifted).max()
                if top is None or top >= (1 << width):
                    continue
                for inner in egraph[shifted].nodes:
                    if inner.op is not ops.SHL:
                        continue
                    base, pre = (egraph.find(c) for c in inner.children)
                    pre_lo = range_of(egraph, pre).min()
                    if pre_lo is None or pre_lo < 0 or not total_of(egraph, pre):
                        continue
                    base_top = range_of(egraph, base).max()
                    if base_top is None or base_top >= (1 << width):
                        continue
                    yield egraph.find(class_id), {"a": base, "w": width}

    def apply(egraph: EGraph, env: dict, class_id: int):
        base = egraph.find(env["a"])
        count = egraph.add_node(ops.LZC, (env["w"],), (base,))
        return egraph.add_node(ops.SHL, (), (base, count))

    return dynamic("lzc-norm-invariant", search, apply)


def minmax_resolve_rule() -> Rewrite:
    """Resolve MIN/MAX whose operand ranges are provably ordered."""

    def search(egraph: EGraph, index: dict):
        for op in (ops.MIN, ops.MAX):
            for class_id, enode in index.get(op, ()):
                left, right = (egraph.find(c) for c in enode.children)
                lo_l, hi_l = range_of(egraph, left).min(), range_of(egraph, left).max()
                lo_r, hi_r = range_of(egraph, right).min(), range_of(egraph, right).max()
                if None in (lo_l, hi_l, lo_r, hi_r):
                    continue
                if hi_l <= lo_r:  # left <= right everywhere
                    keep, drop = (left, right) if op is ops.MIN else (right, left)
                elif hi_r <= lo_l:  # right <= left everywhere
                    keep, drop = (right, left) if op is ops.MIN else (left, right)
                else:
                    continue
                if total_of(egraph, drop):
                    yield egraph.find(class_id), {"keep": keep}

    def apply(egraph: EGraph, env: dict, class_id: int):
        return egraph.find(env["keep"])

    return dynamic("minmax-resolve", search, apply)
