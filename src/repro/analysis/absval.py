"""The analysis value attached to every e-class: range + totality."""

from __future__ import annotations

from dataclasses import dataclass

from repro.intervals import IntervalSet


@dataclass(frozen=True, slots=True)
class AbsVal:
    """Abstract value of an e-class.

    ``iset`` over-approximates the set of non-``*`` concrete evaluations;
    ``total`` asserts the class never evaluates to ``*``.  The lattice join
    (for provably-equal classes) intersects ranges — every member's
    approximation is valid for all — and ORs totality — one always-defined
    member makes the whole class always defined.
    """

    iset: IntervalSet
    total: bool

    @staticmethod
    def top() -> "AbsVal":
        return AbsVal(IntervalSet.top(), False)

    def join(self, other: "AbsVal") -> "AbsVal":
        if self is other:
            return self
        total = self.total or other.total
        if self.iset is other.iset:
            return self if total == self.total else AbsVal(self.iset, total)
        return AbsVal(self.iset.intersect(other.iset), total)

    def __repr__(self) -> str:
        tag = "total" if self.total else "partial"
        return f"AbsVal({self.iset}, {tag})"
