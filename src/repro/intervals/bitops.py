"""Tight bounds for bitwise operations on non-negative integer intervals.

These are the classic ``minOR``/``maxOR``/``minAND``/``maxAND`` algorithms
from Warren's *Hacker's Delight* (2nd ed., section 4-3), generalized to
arbitrary-precision Python integers.  Given ``a in [a_lo, a_hi]`` and
``b in [b_lo, b_hi]`` (all non-negative) they return attainable bounds on
``a | b``, ``a & b`` and ``a ^ b`` that are far tighter than the naive
power-of-two envelopes.

The paper's abstract domain needs bitwise transfer functions because the
benchmark designs OR sticky bits and mask mantissas; precision here directly
improves bitwidth reduction.
"""

from __future__ import annotations


def _bit_scan(width_hint: int) -> int:
    """Highest power of two <= ``2**width_hint`` used as the scan start."""
    return 1 << width_hint


def _top_bit(a_hi: int, b_hi: int) -> int:
    """A power of two strictly above both upper bounds."""
    return 1 << max(a_hi | b_hi, 1).bit_length()


def min_or(a_lo: int, a_hi: int, b_lo: int, b_hi: int) -> int:
    """Minimum of ``a | b`` over the box (Hacker's Delight minOR)."""
    m = _top_bit(a_hi, b_hi)
    a, b = a_lo, b_lo
    while m:
        if (~a) & b & m:
            temp = (a | m) & -m
            if temp <= a_hi:
                a = temp
                break
        elif a & (~b) & m:
            temp = (b | m) & -m
            if temp <= b_hi:
                b = temp
                break
        m >>= 1
    return a | b


def max_or(a_lo: int, a_hi: int, b_lo: int, b_hi: int) -> int:
    """Maximum of ``a | b`` over the box (Hacker's Delight maxOR)."""
    m = _top_bit(a_hi, b_hi)
    a, b = a_hi, b_hi
    while m:
        if a & b & m:
            temp = (a - m) | (m - 1)
            if temp >= a_lo:
                a = temp
                break
            temp = (b - m) | (m - 1)
            if temp >= b_lo:
                b = temp
                break
        m >>= 1
    return a | b


def min_and(a_lo: int, a_hi: int, b_lo: int, b_hi: int) -> int:
    """Minimum of ``a & b`` over the box (Hacker's Delight minAND)."""
    m = _top_bit(a_hi, b_hi)
    a, b = a_lo, b_lo
    while m:
        if (~a) & (~b) & m:
            temp = (a | m) & -m
            if temp <= a_hi:
                a = temp
                break
            temp = (b | m) & -m
            if temp <= b_hi:
                b = temp
                break
        m >>= 1
    return a & b


def max_and(a_lo: int, a_hi: int, b_lo: int, b_hi: int) -> int:
    """Maximum of ``a & b`` over the box (Hacker's Delight maxAND)."""
    m = _top_bit(a_hi, b_hi)
    a, b = a_hi, b_hi
    while m:
        if a & (~b) & m:
            temp = (a & ~m) | (m - 1)
            if temp >= a_lo:
                a = temp
                break
        elif (~a) & b & m:
            temp = (b & ~m) | (m - 1)
            if temp >= b_lo:
                b = temp
                break
        m >>= 1
    return a & b


def min_xor(a_lo: int, a_hi: int, b_lo: int, b_hi: int) -> int:
    """Minimum of ``a ^ b`` over the box (via the OR/AND identities)."""
    m = _top_bit(a_hi, b_hi)
    a, b = a_lo, b_lo
    while m:
        if (~a) & b & m:
            temp = (a | m) & -m
            if temp <= a_hi:
                a = temp
        elif a & (~b) & m:
            temp = (b | m) & -m
            if temp <= b_hi:
                b = temp
        m >>= 1
    return a ^ b


def max_xor(a_lo: int, a_hi: int, b_lo: int, b_hi: int) -> int:
    """Maximum of ``a ^ b`` over the box (Hacker's Delight maxXOR)."""
    m = _top_bit(a_hi, b_hi)
    a, b = a_hi, b_hi
    while m:
        if a & b & m:
            temp = (a - m) | (m - 1)
            if temp >= a_lo:
                a = temp
            else:
                temp = (b - m) | (m - 1)
                if temp >= b_lo:
                    b = temp
        m >>= 1
    return a ^ b
