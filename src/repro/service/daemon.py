"""The optimization daemon: an AF_UNIX socket front on the fair-share queue.

Protocol: newline-delimited JSON, one request line and one response line
per connection (every response carries ``"ok"``).  The wire format for
results IS :class:`~repro.pipeline.session.RunRecord` — ``record`` payloads
are exactly ``RunRecord.as_dict()``, so a client round-trips them through
``RunRecord.from_dict`` and gets the same object the bench trajectory files
store.

Verbs:

- ``ping``     → liveness + tenant roster
- ``submit``   → enqueue a job dict for a tenant; replies with the ticket
- ``status``   → submissions table + event feed since a poll cursor
- ``result``   → the finished record for a ticket (or ``pending``)
- ``stats``    → cache hit/miss counters + per-tenant fair-share ledger
- ``shutdown`` → stop accepting, drain in-flight jobs, persist the cache

Threading: the daemon's accept loop answers requests (submission is just a
ticket append — always fast) while one worker thread drains the queue a
fair round at a time.  ``shutdown`` finishes the backlog before the daemon
exits, so a submitted job is never lost to a graceful stop.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from dataclasses import asdict
from pathlib import Path

from repro.pipeline.budget import Budget
from repro.pipeline.session import Job, RunRecord
from repro.service.queue import OptimizationQueue

__all__ = [
    "OptimizationDaemon",
    "job_to_dict",
    "job_from_dict",
    "request",
]


# ------------------------------------------------------------- wire helpers
def job_to_dict(job: Job) -> dict:
    """A JSON-ready job dict (budgets flatten to their quota dicts)."""
    payload = asdict(job)
    payload["phases"] = [list(phase) for phase in job.phases]
    payload["budget"] = job.budget.as_dict() if job.budget else None
    payload["verify_budget"] = (
        job.verify_budget.as_dict() if job.verify_budget else None
    )
    return payload


def job_from_dict(data: dict) -> Job:
    """Rebuild a :class:`Job` from its wire dict (unknown keys rejected by
    the dataclass itself — a bad submission fails loudly, not silently)."""
    payload = dict(data)
    if payload.get("phases"):
        payload["phases"] = tuple(
            tuple(phase) for phase in payload["phases"]
        )
    for key in ("budget", "verify_budget"):
        if payload.get(key) is not None:
            payload[key] = Budget(**payload[key])
    return Job(**payload)


def request(socket_path: str | Path, payload: dict, timeout: float = 30.0) -> dict:
    """One protocol exchange: connect, send a line, read the reply line."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(str(socket_path))
        sock.sendall(json.dumps(payload).encode() + b"\n")
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
    reply = b"".join(chunks)
    if not reply:
        raise ConnectionError("daemon closed the connection without a reply")
    return json.loads(reply)


# ------------------------------------------------------------------- daemon
class OptimizationDaemon:
    """Serve an :class:`OptimizationQueue` on an AF_UNIX socket."""

    def __init__(
        self,
        socket_path: str | Path,
        queue: OptimizationQueue,
        poll_s: float = 0.02,
    ) -> None:
        self.socket_path = Path(socket_path)
        self.queue = queue
        self.poll_s = poll_s
        self._stopping = threading.Event()
        self._worker: threading.Thread | None = None
        self._server: socket.socket | None = None
        #: Filled by shutdown: how many backlog jobs the drain finished and
        #: how many cache entries were persisted.
        self.shutdown_summary: dict = {}

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Bind the socket and start the drain worker (non-blocking)."""
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        if self.socket_path.exists():
            self.socket_path.unlink()
        self._server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._server.bind(str(self.socket_path))
        self._server.listen(16)
        self._server.settimeout(0.2)
        self.queue.cache.load()
        self._worker = threading.Thread(target=self._drain_loop, daemon=True)
        self._worker.start()

    def serve_forever(self) -> None:
        """Blocking accept loop; returns after a ``shutdown`` request."""
        if self._server is None:
            self.start()
        try:
            while not self._stopping.is_set():
                try:
                    conn, _ = self._server.accept()
                except socket.timeout:
                    continue
                with conn:
                    self._handle(conn)
        finally:
            self._close()

    def _close(self) -> None:
        if self._server is not None:
            self._server.close()
            self._server = None
        if self.socket_path.exists():
            self.socket_path.unlink()

    def _drain_loop(self) -> None:
        while not self._stopping.is_set():
            if self.queue.pending():
                self.queue._run_round()
            else:
                time.sleep(self.poll_s)

    def _shutdown(self) -> dict:
        """Graceful stop: drain the backlog, persist the cache."""
        self._stopping.set()
        if self._worker is not None:
            self._worker.join()
        drained = len(self.queue.drain())
        persisted = self.queue.cache.persist()
        self.shutdown_summary = {"drained": drained, "persisted": persisted}
        return self.shutdown_summary

    # ------------------------------------------------------------- protocol
    def _handle(self, conn: socket.socket) -> None:
        reader = conn.makefile("rb")
        line = reader.readline()
        if not line:
            return
        try:
            reply = self._dispatch(json.loads(line))
        except Exception as err:  # malformed requests must not kill the daemon
            reply = {"ok": False, "error": f"{type(err).__name__}: {err}"}
        conn.sendall(json.dumps(reply).encode() + b"\n")

    def _dispatch(self, req: dict) -> dict:
        op = req.get("op")
        if op == "ping":
            return {"ok": True, "tenants": sorted(self.queue.accounts)}
        if op == "submit":
            if self._stopping.is_set():
                return {"ok": False, "error": "daemon is shutting down"}
            sub = self.queue.submit(job_from_dict(req["job"]), req["tenant"])
            return {"ok": True, "ticket": sub.ticket, "job": sub.job.name}
        if op == "status":
            cursor, events = self.queue.feed.poll(int(req.get("cursor", 0)))
            subs = [
                {
                    "ticket": sub.ticket,
                    "job": sub.job.name,
                    "tenant": sub.tenant,
                    "status": sub.status,
                }
                for sub in list(self.queue.submissions)
            ]
            return {
                "ok": True,
                "cursor": cursor,
                "events": [event.as_dict() for event in events],
                "submissions": subs,
            }
        if op == "result":
            ticket = int(req["ticket"])
            subs = list(self.queue.submissions)
            if not 0 <= ticket < len(subs):
                return {"ok": False, "error": f"no such ticket {ticket}"}
            sub = subs[ticket]
            if sub.record is None:
                return {"ok": True, "status": sub.status, "record": None}
            return {
                "ok": True,
                "status": sub.status,
                "record": sub.record.as_dict(),
            }
        if op == "stats":
            return {
                "ok": True,
                "cache": self.queue.cache.stats(),
                "ledger": self.queue.ledger(),
            }
        if op == "shutdown":
            return {"ok": True, **self._shutdown()}
        return {"ok": False, "error": f"unknown op {op!r}"}


def wait_for_result(
    socket_path: str | Path,
    ticket: int,
    timeout: float = 120.0,
    poll_s: float = 0.05,
    clock=None,
) -> RunRecord:
    """Poll ``result`` until the ticket finishes; returns the record.

    ``clock`` injects a fake monotonic clock so timeout behaviour is
    testable without waiting out the deadline.
    """
    now = clock if clock is not None else time.monotonic
    deadline = now() + timeout
    while now() < deadline:
        reply = request(socket_path, {"op": "result", "ticket": ticket})
        if not reply.get("ok"):
            raise RuntimeError(reply.get("error", "result poll failed"))
        if reply["record"] is not None:
            return RunRecord.from_dict(reply["record"])
        time.sleep(poll_s)
    raise TimeoutError(f"ticket {ticket} unfinished after {timeout:.0f}s")
