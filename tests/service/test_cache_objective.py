"""Cache-correctness for the solver subsystem's new schedule knobs.

A greedy record must never satisfy an ilp request (and vice versa), and a
run with a Pareto characterization returns a different artifact than one
without — so ``extract_objective`` and ``pareto`` join the result-cache key.
The warm-start schedule key separates them too, keeping persisted e-graph
artifacts' bench provenance per-objective.
"""

from __future__ import annotations

from dataclasses import replace

from repro.pipeline import Job, execute_job
from repro.pipeline.session import job_schedule_key
from repro.service import ResultCache, job_cache_key


class TestObjectiveInKeys:
    def test_objective_and_pareto_change_the_cache_key(self):
        base = Job(name="a", design="lzc_example")
        for change in (
            dict(extract_objective="ilp"),
            dict(pareto="epsilon"),
            dict(pareto="weighted"),
            dict(extract_objective="ilp", pareto="epsilon"),
        ):
            assert job_cache_key(base) != job_cache_key(
                replace(base, **change)
            ), change
        # Pareto modes are distinct requests, not one flag.
        assert job_cache_key(
            replace(base, pareto="epsilon")
        ) != job_cache_key(replace(base, pareto="weighted"))

    def test_objective_separates_warm_start_schedules(self):
        base = Job(name="a", design="lzc_example")
        assert job_schedule_key(base) != job_schedule_key(
            replace(base, extract_objective="ilp")
        )

    def test_two_objectives_fill_two_cache_entries(self):
        """The regression the satellite pins: submit the same design under
        both objectives — each run misses, each stores, and each key gets
        its *own* record back (the ilp one with ilp provenance)."""
        cache = ResultCache(capacity=8)
        greedy_job = Job(name="lzc", design="lzc_example", iter_limit=2)
        ilp_job = replace(greedy_job, extract_objective="ilp")

        assert cache.get(job_cache_key(greedy_job)) is None
        greedy_record = execute_job(greedy_job)
        cache.put(job_cache_key(greedy_job), greedy_record)

        # The ilp request must miss despite the identical design/knobs.
        assert cache.get(job_cache_key(ilp_job)) is None
        ilp_record = execute_job(ilp_job)
        cache.put(job_cache_key(ilp_job), ilp_record)

        hit_greedy = cache.get(job_cache_key(greedy_job))
        hit_ilp = cache.get(job_cache_key(ilp_job))
        assert hit_greedy is not None and hit_ilp is not None
        assert hit_greedy.extract_objective == "greedy"
        assert hit_ilp.extract_objective == "ilp"
        assert hit_greedy.cache_hit and hit_ilp.cache_hit
