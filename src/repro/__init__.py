"""repro — constraint-aware datapath optimization using e-graphs.

A from-scratch Python reproduction of Coward, Constantinides & Drane,
*Automating Constraint-Aware Datapath Optimization using E-Graphs* (DAC
2023, arXiv:2303.01839): an RTL optimizer that couples equality saturation
with an interval-union abstract interpretation so conditional-branch
constraints unlock rewrites that are only valid on a sub-domain.

Quickstart::

    from repro import DatapathOptimizer
    from repro.designs import get_design

    design = get_design("float_to_unorm")
    tool = DatapathOptimizer(design.input_ranges)
    result = tool.optimize_verilog(design.verilog).outputs["out"]
    print(result.emit_verilog())
    print(f"delay -{result.delay_improvement:.0%}  area -{result.area_improvement:.0%}")

Batch / pipeline quickstart::

    from repro.pipeline import Session

    records = Session.for_designs(iter_limit=4, node_limit=8000).run(parallel=True)
    for record in records:
        print(record.to_json())

Package map (one subsystem per subpackage — see DESIGN.md):
``ir`` (word-level IR), ``intervals`` (the abstract domain A),
``egraph`` (equality saturation engine), ``analysis`` (abstract
interpretation incl. ASSUME refinement), ``rewrites`` (Tables I/II and
friends, composed into named rulesets), ``rtl`` (Verilog
frontend/backend), ``synth`` (delay/area models + gate-level synthesis
substitute), ``verify`` (simulation + BDD equivalence), ``pipeline``
(composable stages, batch sessions, run records), ``opt`` (the one-call
tool preset), ``designs`` (the paper's benchmarks).
"""

from repro.opt import DatapathOptimizer, OptimizerConfig
from repro.pipeline import Budget, Job, Pipeline, ResourceGovernor, RunRecord, Session

__version__ = "2.1.0"

__all__ = [
    "DatapathOptimizer",
    "OptimizerConfig",
    "Session",
    "Job",
    "RunRecord",
    "Pipeline",
    "Budget",
    "ResourceGovernor",
    "__version__",
]
